//! Wire encoding for the distributed (thread-per-party) execution.
//!
//! Fixed, self-describing little formats built on [`bytes`]: every field
//! element is a 32-byte big-endian block, group elements and scalars use
//! the group's fixed-length encodings, and sequences are length-prefixed.
//! This is deliberately simple — the point is that the distributed runner
//! exchanges *real bytes*, not shared memory.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ppgr_bigint::{BigUint, Fp, FpCtx};
use ppgr_elgamal::Ciphertext;
use ppgr_group::{Group, Scalar};
use ppgr_net::Phase;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Bytes per serialized field element.
pub const FIELD_BYTES: usize = 32;

/// Frame tag: an ordinary protocol message follows.
pub const TAG_DATA: u8 = 0x01;

/// Frame tag: an abort notification follows.
pub const TAG_ABORT: u8 = 0x02;

/// Decoding failure.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum WireError {
    /// The bytes do not parse as the expected structure.
    Malformed(&'static str),
    /// A frame decoded cleanly but left bytes unconsumed. Trailing bytes
    /// are rejected, not ignored: a forged frame could otherwise smuggle
    /// garbage past every structural check.
    Trailing(usize),
}

impl WireError {
    fn new(what: &'static str) -> Self {
        WireError::Malformed(what)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(what) => write!(f, "malformed wire message: {what}"),
            WireError::Trailing(n) => {
                write!(f, "malformed wire message: {n} unconsumed trailing byte(s)")
            }
        }
    }
}

impl Error for WireError {}

/// Why a party aborted the session — carried inside an abort frame so
/// survivors can adopt the original blame instead of blaming whoever
/// relayed the news.
///
/// The frame deliberately carries nothing beyond liveness facts: who is
/// blamed, which phase, what kind of failure. No protocol state, shares,
/// or partial results ever ride on it.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum AbortKind {
    /// The blamed party sent nothing before its phase deadline.
    Timeout,
    /// The blamed party's channels tore down.
    Disconnected,
    /// The blamed party presented a proof that failed verification.
    ProofRejected,
    /// The blamed party sent bytes that do not decode as the expected
    /// message.
    Protocol,
}

impl AbortKind {
    fn to_u8(self) -> u8 {
        match self {
            AbortKind::Timeout => 0,
            AbortKind::Disconnected => 1,
            AbortKind::ProofRejected => 2,
            AbortKind::Protocol => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => AbortKind::Timeout,
            1 => AbortKind::Disconnected,
            2 => AbortKind::ProofRejected,
            3 => AbortKind::Protocol,
            _ => return Err(WireError::new("unknown abort kind")),
        })
    }
}

impl fmt::Display for AbortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AbortKind::Timeout => "timeout",
            AbortKind::Disconnected => "disconnect",
            AbortKind::ProofRejected => "rejected proof",
            AbortKind::Protocol => "protocol violation",
        };
        f.write_str(name)
    }
}

fn phase_to_u8(phase: Phase) -> u8 {
    match phase {
        Phase::Gain => 0,
        Phase::KeyGen => 1,
        Phase::Encrypt => 2,
        Phase::Compare => 3,
        Phase::Hop => 4,
        Phase::Submit => 5,
    }
}

fn phase_from_u8(v: u8) -> Result<Phase, WireError> {
    Phase::ALL
        .get(v as usize)
        .copied()
        .ok_or(WireError::new("unknown phase"))
}

/// The poison pill a failing party broadcasts before unwinding, so every
/// survivor exits within one deadline instead of a cascade of timeouts.
///
/// `reporter` names the *original accuser* — the party that observed the
/// failure first-hand. Relays forward frames verbatim, so the reporter
/// survives any number of hops; an accused-but-alive party uses it to
/// point back at whoever framed it. Nothing authenticates the field (the
/// frames are unsigned), which is exactly why hearsay derived from a
/// frame ranks below first-hand evidence in consensus blame.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct AbortFrame {
    /// The party held responsible for the failure.
    pub blamed: usize,
    /// The phase in which the failure was observed.
    pub phase: Phase,
    /// What kind of failure was observed.
    pub kind: AbortKind,
    /// The party that originated the accusation (not the relayer).
    pub reporter: usize,
}

impl AbortFrame {
    /// Encoded size, tag included.
    pub const ENCODED_LEN: usize = 11;

    /// Encodes the frame, tag included.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::ENCODED_LEN);
        buf.put_u8(TAG_ABORT);
        buf.put_u32(self.blamed as u32);
        buf.put_u8(phase_to_u8(self.phase));
        buf.put_u8(self.kind.to_u8());
        buf.put_u32(self.reporter as u32);
        buf.freeze()
    }
}

/// A received distributed-runner message, tag decoded.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum Frame {
    /// An ordinary protocol message; the payload has the tag stripped.
    Data(Bytes),
    /// A peer is telling us the session is dead.
    Abort(AbortFrame),
}

/// Splits a raw mesh message into its tag and payload.
///
/// # Errors
///
/// [`WireError`] on an empty buffer, an unknown tag, or a malformed abort
/// frame.
pub fn parse_frame(bytes: &Bytes) -> Result<Frame, WireError> {
    match bytes.first() {
        None => Err(WireError::new("empty frame")),
        Some(&TAG_DATA) => Ok(Frame::Data(bytes.slice(1..))),
        Some(&TAG_ABORT) => {
            let mut r = Reader::new(bytes.slice(1..));
            r.need(AbortFrame::ENCODED_LEN - 1, "truncated abort frame")?;
            let blamed = r.buf.get_u32() as usize;
            let phase = phase_from_u8(r.buf.get_u8())?;
            let kind = AbortKind::from_u8(r.buf.get_u8())?;
            let reporter = r.buf.get_u32() as usize;
            r.done()?;
            Ok(Frame::Abort(AbortFrame {
                blamed,
                phase,
                kind,
                reporter,
            }))
        }
        Some(_) => Err(WireError::new("unknown frame tag")),
    }
}

/// Serializer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer whose output is a data frame: the buffer starts
    /// with [`TAG_DATA`], and [`finish`](Self::finish) yields bytes that
    /// [`parse_frame`] reads back as [`Frame::Data`].
    pub fn framed() -> Self {
        let mut w = Self::new();
        w.buf.put_u8(TAG_DATA);
        w
    }

    /// Appends a `u32` length/count.
    ///
    /// # Errors
    ///
    /// Fails if `len` exceeds `u32::MAX` (no protocol message is remotely
    /// that large; a count this big means the caller is corrupt).
    pub fn put_len(&mut self, len: usize) -> Result<(), WireError> {
        let len = u32::try_from(len).map_err(|_| WireError::new("length exceeds u32"))?;
        self.buf.put_u32(len);
        Ok(())
    }

    /// Appends one field element (32-byte big-endian).
    pub fn put_fp(&mut self, v: &Fp) {
        let bytes = v.value().to_bytes_be();
        assert!(bytes.len() <= FIELD_BYTES, "field element exceeds 32 bytes");
        self.buf.put_bytes(0, FIELD_BYTES - bytes.len());
        self.buf.put_slice(&bytes);
    }

    /// Appends a slice of field elements, length-prefixed.
    ///
    /// # Errors
    ///
    /// Fails if the element count does not fit the `u32` prefix.
    pub fn put_fp_vec(&mut self, vs: &[Fp]) -> Result<(), WireError> {
        self.put_len(vs.len())?;
        for v in vs {
            self.put_fp(v);
        }
        Ok(())
    }

    /// Appends a group element (fixed length for the group).
    pub fn put_element(&mut self, group: &Group, e: &ppgr_group::Element) {
        self.buf.put_slice(&group.encode(e));
    }

    /// Appends a scalar, padded to the group's scalar width.
    pub fn put_scalar(&mut self, group: &Group, s: &Scalar) {
        let width = group.order().bits().div_ceil(8);
        let bytes = s.value().to_bytes_be();
        assert!(bytes.len() <= width);
        self.buf.put_bytes(0, width - bytes.len());
        self.buf.put_slice(&bytes);
    }

    /// Appends a ciphertext (two group elements).
    pub fn put_ciphertext(&mut self, group: &Group, ct: &Ciphertext) {
        self.put_element(group, &ct.alpha);
        self.put_element(group, &ct.beta);
    }

    /// Appends a ciphertext vector, length-prefixed.
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext count does not fit the `u32` prefix.
    pub fn put_ciphertexts(&mut self, group: &Group, cts: &[Ciphertext]) -> Result<(), WireError> {
        self.put_len(cts.len())?;
        for ct in cts {
            self.put_ciphertext(group, ct);
        }
        Ok(())
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends raw bytes with no length prefix (fixed-width payloads such
    /// as the keygen echo digests; the reader must know the width).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Finishes, returning the frozen byte buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Deserializer over a received byte buffer.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wraps received bytes.
    pub fn new(bytes: Bytes) -> Self {
        Reader { buf: bytes }
    }

    fn need(&self, n: usize, what: &'static str) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            return Err(WireError::new(what));
        }
        Ok(())
    }

    /// Reads a `u32` length/count.
    ///
    /// The claimed count is clamped against the bytes actually present in
    /// the frame: every length-prefixed element occupies at least one byte,
    /// so a count exceeding the remaining payload is malformed on its face.
    /// Without this bound an attacker-claimed count drives
    /// `Vec::with_capacity` in the decoders — a 4-byte frame asking the
    /// receiver to allocate gigabytes.
    #[allow(clippy::len_without_is_empty)] // decodes a length prefix, not a container size
    pub fn len(&mut self) -> Result<usize, WireError> {
        self.need(4, "truncated length")?;
        let n = self.buf.get_u32() as usize;
        if n > self.buf.remaining() {
            return Err(WireError::new("length prefix exceeds frame"));
        }
        Ok(n)
    }

    /// Reads one field element.
    pub fn fp(&mut self, field: &Arc<FpCtx>) -> Result<Fp, WireError> {
        self.need(FIELD_BYTES, "truncated field element")?;
        let mut raw = [0u8; FIELD_BYTES];
        self.buf.copy_to_slice(&mut raw);
        let v = BigUint::from_bytes_be(&raw);
        if &v >= field.modulus() {
            return Err(WireError::new("field element out of range"));
        }
        Ok(field.element(v))
    }

    /// Reads a length-prefixed field-element vector.
    pub fn fp_vec(&mut self, field: &Arc<FpCtx>) -> Result<Vec<Fp>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| self.fp(field)).collect()
    }

    /// Reads a group element.
    pub fn element(&mut self, group: &Group) -> Result<ppgr_group::Element, WireError> {
        let n = group.element_len();
        self.need(n, "truncated group element")?;
        let raw = self.buf.copy_to_bytes(n);
        group
            .decode(&raw)
            .map_err(|_| WireError::new("invalid group element"))
    }

    /// Reads a scalar.
    pub fn scalar(&mut self, group: &Group) -> Result<Scalar, WireError> {
        let width = group.order().bits().div_ceil(8);
        self.need(width, "truncated scalar")?;
        let raw = self.buf.copy_to_bytes(width);
        let v = BigUint::from_bytes_be(&raw);
        if &v >= group.order() {
            return Err(WireError::new("scalar out of range"));
        }
        Ok(group.scalar_from(&v))
    }

    /// Reads a ciphertext.
    pub fn ciphertext(&mut self, group: &Group) -> Result<Ciphertext, WireError> {
        Ok(Ciphertext {
            alpha: self.element(group)?,
            beta: self.element(group)?,
        })
    }

    /// Reads a length-prefixed ciphertext vector.
    pub fn ciphertexts(&mut self, group: &Group) -> Result<Vec<Ciphertext>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| self.ciphertext(group)).collect()
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8, "truncated u64")?;
        Ok(self.buf.get_u64())
    }

    /// Reads exactly `n` raw bytes (fixed-width payloads written with
    /// [`Writer::put_raw`]).
    pub fn take(&mut self, n: usize) -> Result<Bytes, WireError> {
        self.need(n, "truncated raw bytes")?;
        Ok(self.buf.copy_to_bytes(n))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Asserts the buffer was fully consumed; the error carries how many
    /// bytes were left over, so decoders can report exactly how much
    /// garbage trailed the frame.
    pub fn done(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_dotprod::default_field;
    use ppgr_elgamal::{ExpElGamal, KeyPair};
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fp_round_trip() {
        let field = default_field();
        let mut rng = StdRng::seed_from_u64(1);
        let vs: Vec<Fp> = (0..5).map(|_| field.random(&mut rng)).collect();
        let mut w = Writer::new();
        w.put_fp_vec(&vs).unwrap();
        let mut r = Reader::new(w.finish());
        assert_eq!(r.fp_vec(&field).unwrap(), vs);
        r.done().unwrap();
    }

    #[test]
    fn element_scalar_ciphertext_round_trip() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let ct = scheme.encrypt(kp.public_key(), &group.scalar_from_u64(7), &mut rng);
        let s = group.random_scalar(&mut rng);

        let mut w = Writer::new();
        w.put_element(&group, kp.public_key());
        w.put_scalar(&group, &s);
        w.put_ciphertexts(&group, std::slice::from_ref(&ct))
            .unwrap();
        w.put_u64(42);
        let mut r = Reader::new(w.finish());
        assert_eq!(&r.element(&group).unwrap(), kp.public_key());
        assert_eq!(r.scalar(&group).unwrap(), s);
        assert_eq!(r.ciphertexts(&group).unwrap(), vec![ct]);
        assert_eq!(r.u64().unwrap(), 42);
        r.done().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let field = default_field();
        let mut w = Writer::new();
        w.put_fp(&field.from_u64(5));
        let bytes = w.finish();
        let mut r = Reader::new(bytes.slice(..10));
        assert!(r.fp(&field).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let field = default_field();
        // 32 bytes of 0xff is ≥ the modulus (2^256 − 189).
        let mut r = Reader::new(Bytes::from(vec![0xffu8; 32]));
        assert!(r.fp(&field).is_err());
    }

    #[test]
    fn data_frame_round_trip() {
        let mut w = Writer::framed();
        w.put_u64(77);
        let bytes = w.finish();
        assert_eq!(bytes[0], TAG_DATA);
        let Frame::Data(payload) = parse_frame(&bytes).unwrap() else {
            panic!("expected data frame");
        };
        let mut r = Reader::new(payload);
        assert_eq!(r.u64().unwrap(), 77);
        r.done().unwrap();
    }

    #[test]
    fn abort_frame_round_trip() {
        for phase in Phase::ALL {
            for kind in [
                AbortKind::Timeout,
                AbortKind::Disconnected,
                AbortKind::ProofRejected,
                AbortKind::Protocol,
            ] {
                let frame = AbortFrame {
                    blamed: 3,
                    phase,
                    kind,
                    reporter: 2,
                };
                let bytes = frame.encode();
                assert_eq!(bytes.len(), AbortFrame::ENCODED_LEN);
                assert_eq!(parse_frame(&bytes).unwrap(), Frame::Abort(frame));
            }
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(parse_frame(&Bytes::new()).is_err());
        assert!(parse_frame(&Bytes::from(vec![0x7f, 0, 0])).is_err());
        // Abort with a truncated body (the old 7-byte v1 layout included).
        assert!(parse_frame(&Bytes::from(vec![TAG_ABORT, 0, 0])).is_err());
        assert!(parse_frame(&Bytes::from(vec![TAG_ABORT, 0, 0, 0, 3, 0, 0])).is_err());
        // Abort with an unknown phase.
        assert!(parse_frame(&Bytes::from(vec![TAG_ABORT, 0, 0, 0, 3, 99, 0, 0, 0, 0, 1])).is_err());
        // Abort with trailing bytes: the garbage count is reported.
        assert_eq!(
            parse_frame(&Bytes::from(vec![
                TAG_ABORT, 0, 0, 0, 3, 0, 0, 0, 0, 0, 1, 9, 9
            ])),
            Err(WireError::Trailing(2))
        );
    }

    #[test]
    fn absurd_length_prefix_rejected_before_allocation() {
        // Regression: a 4-byte frame claiming u32::MAX elements used to
        // reach `Vec::with_capacity(u32::MAX)` in the decoders. The count
        // must be bounded by the bytes actually present.
        let field = default_field();
        let group = GroupKind::Ecc160.group();
        let mut huge = BytesMut::new();
        huge.put_u32(u32::MAX);
        let bytes = huge.freeze();
        assert!(Reader::new(bytes.clone()).len().is_err());
        assert!(Reader::new(bytes.clone()).fp_vec(&field).is_err());
        assert!(Reader::new(bytes).ciphertexts(&group).is_err());

        // One element short of the claim is still malformed.
        let mut short = BytesMut::new();
        short.put_u32(3);
        short.put_slice(&[0u8; 2]);
        assert!(Reader::new(short.freeze()).len().is_err());

        // A count covered by the payload still decodes.
        let mut w = Writer::new();
        w.put_fp_vec(&[field.from_u64(1), field.from_u64(2)])
            .unwrap();
        let mut r = Reader::new(w.finish());
        assert_eq!(r.fp_vec(&field).unwrap().len(), 2);
        r.done().unwrap();
    }

    #[test]
    fn trailing_bytes_detected_and_counted() {
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u64(2);
        let mut r = Reader::new(w.finish());
        let _ = r.u64().unwrap();
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.done(), Err(WireError::Trailing(8)));
        let _ = r.u64().unwrap();
        assert_eq!(r.remaining(), 0);
        r.done().unwrap();
    }

    #[test]
    fn raw_bytes_round_trip() {
        let mut w = Writer::new();
        w.put_raw(&[7; 32]);
        w.put_raw(&[8; 32]);
        let mut r = Reader::new(w.finish());
        assert_eq!(r.take(32).unwrap(), Bytes::from(vec![7u8; 32]));
        assert_eq!(r.take(32).unwrap(), Bytes::from(vec![8u8; 32]));
        assert!(r.take(1).is_err());
        r.done().unwrap();
    }
}
