//! Pool-served sessions are transcript-identical to solo cold runs for
//! arbitrary `(n, seed, workers)`.
//!
//! The precompute lanes now mint the full keygen tier (joint keys,
//! Schnorr proofs, `y^r` mask halves), so this pins the strongest claim:
//! a warm-keygen session stepped by any number of pool workers produces
//! the same ranks and the same wire traffic as the serial cold run.

use ppgr_core::{FrameworkParams, GroupRanking, Questionnaire};
use ppgr_group::GroupKind;
use ppgr_runtime::{PrecomputeConfig, Runtime, RuntimeConfig};
use proptest::prelude::*;

fn small_params(n: usize, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(1)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn warm_keygen_pool_sessions_match_cold_solo_runs(
        n in 2usize..5,
        seed in 0u64..10_000,
        workers in 1usize..4,
    ) {
        let rt = Runtime::new(RuntimeConfig {
            workers,
            precompute: PrecomputeConfig {
                depth: 1,
                refill_workers: 1,
            },
            ..RuntimeConfig::default()
        });
        let gid = rt.register_group(small_params(n, seed));
        // Wait for the lane so the session definitely starts warm.
        while rt.precomputed(gid) == 0 {
            std::thread::yield_now();
        }
        let pooled = rt.submit_group(gid).join().expect("pooled outcome");
        let solo = GroupRanking::new(small_params(n, seed))
            .with_random_population()
            .run()
            .expect("solo outcome");
        prop_assert_eq!(pooled.ranks(), solo.ranks());
        prop_assert_eq!(pooled.traffic(), solo.traffic());
    }
}
