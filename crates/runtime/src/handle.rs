//! Completion handles for submitted sessions.

use ppgr_core::{Outcome, RunError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A completion callback attached to a slot at submit time (see
/// [`Runtime::submit_session_observed`](crate::Runtime::submit_session_observed)).
pub(crate) type Observer = Box<dyn FnOnce(&Result<Outcome, RunError>) + Send>;

/// One-shot result mailbox shared between a pool task and its handle.
pub(crate) struct Slot {
    result: Mutex<Option<Result<Outcome, RunError>>>,
    ready: Condvar,
    /// Cooperative cancellation: checked by the worker between steps.
    cancelled: AtomicBool,
    /// Fired exactly once, inside [`Slot::fill`] before the result is
    /// stored, so an observer (e.g. an admission controller's in-flight
    /// accounting) sees the completion no later than any joiner does.
    observer: Mutex<Option<Observer>>,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
            observer: Mutex::new(None),
        })
    }

    /// Attaches the completion observer. Must be called before the task is
    /// injected (the worker that fills the slot takes it exactly once).
    pub(crate) fn observe(&self, f: Observer) {
        *self.observer.lock().expect("slot observer mutex") = Some(f);
    }

    /// Deposits the session result and wakes any joiner. Called exactly
    /// once per slot (by the worker that finished or failed the session).
    pub(crate) fn fill(&self, result: Result<Outcome, RunError>) {
        let observer = self.observer.lock().expect("slot observer mutex").take();
        if let Some(observer) = observer {
            observer(&result);
        }
        let mut guard = self.result.lock().expect("slot mutex");
        debug_assert!(guard.is_none(), "slot filled twice");
        *guard = Some(result);
        self.ready.notify_all();
    }

    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    fn wait(&self) -> Result<Outcome, RunError> {
        let mut guard = self.result.lock().expect("slot mutex");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.ready.wait(guard).expect("slot condvar");
        }
    }

    fn is_filled(&self) -> bool {
        self.result.lock().expect("slot mutex").is_some()
    }
}

/// A claim on the result of a session submitted to a
/// [`Runtime`](crate::Runtime).
///
/// The session keeps running whether or not the handle is held; dropping
/// the handle merely discards the result.
pub struct SessionHandle {
    pub(crate) slot: Arc<Slot>,
}

impl SessionHandle {
    /// Blocks until the session completes and returns its outcome.
    ///
    /// # Errors
    ///
    /// Whatever [`RunError`] the session itself produced (e.g.
    /// [`RunError::MissingPopulation`] for a ranking submitted without a
    /// population), [`RunError::Cancelled`] after a successful
    /// [`cancel`](Self::cancel), or [`RunError::DeadlineExceeded`] for a
    /// session that outlived its wall-clock budget.
    pub fn join(self) -> Result<Outcome, RunError> {
        self.slot.wait()
    }

    /// Requests cooperative cancellation: the worker abandons the session
    /// at the next step boundary (a step in flight is never interrupted)
    /// and the join resolves to [`RunError::Cancelled`], reclaiming the
    /// worker for other sessions. A session that already completed is
    /// unaffected — its result stands.
    pub fn cancel(&self) {
        self.slot.cancel();
    }

    /// Whether the session has already completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.slot.is_filled()
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}
