//! The persistent work-stealing worker pool.
//!
//! Scheduling unit = one [`SessionMachine::step`] — key generation, bit
//! encryption, one party's comparison batch, or one chain hop. A worker
//! that steps a still-pending session pushes it back onto the *back* of
//! its own deque and pops from the back too (LIFO), so the owner keeps
//! driving the same session — warm caches, no gratuitous interleaving —
//! while idle workers steal from the *front* of other workers' deques
//! (FIFO), picking up whole sessions. The chain's sequential-hop invariant
//! is preserved structurally: a session is owned by exactly one worker at
//! a time, so its steps can never run concurrently with each other.

use crate::handle::{Observer, SessionHandle, Slot};
use crate::precompute::{GroupId, PrecomputeConfig, PrecomputePool};
use ppgr_core::{
    verify_deferred_jobs, Ciphertext, FrameworkParams, GroupRanking, KeygenVerifyJob, RunError,
    SessionMachine, SessionStatus, SortOptions,
};
use ppgr_net::Deadline;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker sleeps between steal attempts. Short against a
/// hop (milliseconds of exponentiations) but long enough not to spin.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Configuration for a [`Runtime`].
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct RuntimeConfig {
    /// Worker threads in the pool (`0` = one per available core).
    pub workers: usize,
    /// Default wall-clock budget per session (`None` = unbounded). A
    /// session past its budget is abandoned at the next step boundary
    /// with [`RunError::DeadlineExceeded`], reclaiming its worker — a
    /// wedged session cannot hold a pool thread forever.
    pub session_budget: Option<Duration>,
    /// The offline precompute pool serving
    /// [`Runtime::register_group`] / [`Runtime::submit_group`].
    pub precompute: PrecomputeConfig,
    /// Cross-session verify batch window (`0` or `1` = disabled). When
    /// `> 1`, sessions this pool builds run with
    /// [`SortOptions::defer_verify`]: their keygen proof checks are parked
    /// in a pool-wide collector and settled — up to `verify_batch` sessions
    /// at a time — through one aggregate multi-exponentiation
    /// ([`ppgr_core::verify_deferred_jobs`]), with per-session blame
    /// preserved. The collector flushes when the window fills and whenever
    /// a worker goes idle, so a lone session is never held hostage waiting
    /// for peers. Verification is RNG-free and sends no bytes, so batching
    /// reorders work, never bytes: transcripts and ranks stay bit-identical
    /// to solo runs.
    pub verify_batch: usize,
}

impl RuntimeConfig {
    fn resolve_workers(self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// A session plus the mailbox its outcome is delivered to.
struct Task {
    machine: SessionMachine,
    slot: Arc<Slot>,
    /// Wall-clock expiry; checked between steps (never mid-step).
    deadline: Option<Deadline>,
}

/// A session parked in the verify collector: its deferred keygen check
/// plus the task itself, which resumes only after the check passes.
struct Parked {
    job: KeygenVerifyJob,
    task: Task,
}

/// Amortization counters, maintained with relaxed atomics (monotonic
/// telemetry, never synchronization).
#[derive(Default)]
struct Counters {
    verify_flushes: AtomicU64,
    verify_batched_sessions: AtomicU64,
    verify_batched_proofs: AtomicU64,
    scratch_reused: AtomicU64,
}

/// A point-in-time copy of a pool's cross-session amortization counters
/// ([`Runtime::stats`]).
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct RuntimeStats {
    /// Aggregate verify flushes run (batched settles of the collector).
    pub verify_flushes: u64,
    /// Sessions whose keygen checks were settled in those flushes.
    pub verify_batched_sessions: u64,
    /// Individual proofs folded into the aggregate equations.
    pub verify_batched_proofs: u64,
    /// Sessions that started with a recycled hop scratch buffer.
    pub scratch_reused: u64,
}

/// State shared by the submitters and every worker.
struct Shared {
    /// Global FIFO that `submit` feeds; workers drain it when their own
    /// deque is empty.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: owner pops LIFO (back), thieves pop FIFO (front).
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot for idle workers.
    gate: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// [`RuntimeConfig::verify_batch`].
    verify_batch: usize,
    /// Sessions parked awaiting a batched keygen verify.
    pending_verify: Mutex<Vec<Parked>>,
    /// Recycled hop scratch buffers, donated to incoming sessions so one
    /// allocation's capacity serves many sessions in turn.
    scratch_pool: Mutex<Vec<Vec<Ciphertext>>>,
    stats: Counters,
}

impl Shared {
    fn inject(&self, task: Task) {
        self.injector
            .lock()
            .expect("injector mutex")
            .push_back(task);
        self.wake.notify_all();
    }

    /// Hands out a recycled scratch buffer, if any.
    fn donate_scratch(&self) -> Option<Vec<Ciphertext>> {
        let buf = self.scratch_pool.lock().expect("scratch pool mutex").pop();
        if buf.is_some() {
            self.stats.scratch_reused.fetch_add(1, Ordering::Relaxed);
        }
        buf
    }

    /// Returns a finished session's scratch buffer to the pool. Bounded by
    /// the worker count — more buffers than workers can never be in use at
    /// once, so the excess would only pin memory.
    fn recycle_scratch(&self, buf: Vec<Ciphertext>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.scratch_pool.lock().expect("scratch pool mutex");
        if pool.len() < self.locals.len() {
            pool.push(buf);
        }
    }
}

/// A persistent pool executing many ranking sessions concurrently.
///
/// Dropping the runtime drains it: workers finish every submitted session
/// before exiting, so handles joined after the drop still resolve.
/// Cancelled or deadline-expired sessions also resolve — with
/// [`RunError::Cancelled`] / [`RunError::DeadlineExceeded`] — so a drain
/// can never hang on a wedged session.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    session_budget: Option<Duration>,
    precompute: PrecomputePool,
}

impl Runtime {
    /// Starts a pool per `config`.
    pub fn new(config: RuntimeConfig) -> Self {
        let workers = config.resolve_workers();
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            verify_batch: config.verify_batch,
            pending_verify: Mutex::new(Vec::new()),
            scratch_pool: Mutex::new(Vec::new()),
            stats: Counters::default(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppgr-runtime-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            shared,
            workers: handles,
            session_budget: config.session_budget,
            precompute: PrecomputePool::new(config.precompute),
        }
    }

    /// Starts a pool with exactly `workers` threads (`0` = one per core).
    pub fn with_workers(workers: usize) -> Self {
        Runtime::new(RuntimeConfig {
            workers,
            ..RuntimeConfig::default()
        })
    }

    /// The number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A point-in-time copy of the pool's cross-session amortization
    /// counters.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            verify_flushes: self.shared.stats.verify_flushes.load(Ordering::Relaxed),
            verify_batched_sessions: self
                .shared
                .stats
                .verify_batched_sessions
                .load(Ordering::Relaxed),
            verify_batched_proofs: self
                .shared
                .stats
                .verify_batched_proofs
                .load(Ordering::Relaxed),
            scratch_reused: self.shared.stats.scratch_reused.load(Ordering::Relaxed),
        }
    }

    /// The sort options this pool builds sessions with: single-threaded
    /// (the pool supplies the parallelism) and, when a verify window is
    /// configured, deferred keygen checks for cross-session batching.
    fn session_options(&self) -> SortOptions {
        SortOptions {
            threads: 1,
            defer_verify: self.shared.verify_batch > 1,
            ..SortOptions::default()
        }
    }

    /// Submits a session for `params` with its seeded random population —
    /// the deployment shape: one call per group that wants a ranking.
    ///
    /// Each session runs single-threaded (`threads: 1`): under multi-session
    /// load the pool itself supplies the parallelism, and per-party scoped
    /// fan-out inside a session would only fight it for cores.
    pub fn submit(&self, params: FrameworkParams) -> SessionHandle {
        self.submit_ranking(GroupRanking::new(params).with_random_population())
    }

    /// Submits a session with an explicit wall-clock budget, overriding
    /// the pool default (`None` = unbounded for this session).
    pub fn submit_with_budget(
        &self,
        params: FrameworkParams,
        budget: Option<Duration>,
    ) -> SessionHandle {
        self.submit_ranking_with_budget(GroupRanking::new(params).with_random_population(), budget)
    }

    /// Submits a fully configured orchestrator (custom population etc.).
    ///
    /// Configuration errors surface on [`SessionHandle::join`], keeping the
    /// submit path non-blocking and uniform.
    pub fn submit_ranking(&self, ranking: GroupRanking) -> SessionHandle {
        self.submit_ranking_with_budget(ranking, self.session_budget)
    }

    fn submit_ranking_with_budget(
        &self,
        ranking: GroupRanking,
        budget: Option<Duration>,
    ) -> SessionHandle {
        let slot = Slot::new();
        let handle = SessionHandle {
            slot: Arc::clone(&slot),
        };
        match ranking.into_machine_with(self.session_options()) {
            Ok(mut machine) => {
                if let Some(buf) = self.shared.donate_scratch() {
                    machine.adopt_hop_scratch(buf);
                }
                self.inject(Task {
                    machine,
                    slot,
                    deadline: budget.map(Deadline::after),
                });
            }
            Err(e) => slot.fill(Err(e)),
        }
        handle
    }

    /// Registers a recurring group: opens a precompute lane for its
    /// parameter template (and warms the group's fixed-base comb tables).
    /// Background refill workers immediately start stocking the lane's
    /// upcoming sessions' offline randomness.
    pub fn register_group(&self, params: FrameworkParams) -> GroupId {
        self.precompute.register(params)
    }

    /// Submits the next session of a registered group: session `k` runs
    /// with seed `base_seed + k` and, when the refill workers got there in
    /// time, starts warm from its precomputed offline stock. A session the
    /// pool could not stock in time runs cold — same transcript and ranks,
    /// only more online work.
    ///
    /// # Panics
    ///
    /// Panics if `gid` was not issued by this runtime.
    pub fn submit_group(&self, gid: GroupId) -> SessionHandle {
        let (params, stock) = self.precompute.take(gid);
        let slot = Slot::new();
        let handle = SessionHandle {
            slot: Arc::clone(&slot),
        };
        match GroupRanking::new(params)
            .with_random_population()
            .into_machine_with(self.session_options())
        {
            Ok(mut machine) => {
                if let Some(stock) = stock {
                    // The pool generated the stock for exactly this
                    // fingerprint; a rejected attach degrades to a cold
                    // (still bit-identical) run rather than an error.
                    let _ = machine.attach_offline_stock(stock);
                }
                if let Some(buf) = self.shared.donate_scratch() {
                    machine.adopt_hop_scratch(buf);
                }
                self.inject(Task {
                    machine,
                    slot,
                    deadline: self.session_budget.map(Deadline::after),
                });
            }
            Err(e) => slot.fill(Err(e)),
        }
        handle
    }

    /// How many offline stocks are ready for group `gid` right now
    /// (between 0 and the configured precompute depth).
    ///
    /// # Panics
    ///
    /// Panics if `gid` was not issued by this runtime.
    pub fn precomputed(&self, gid: GroupId) -> usize {
        self.precompute.ready(gid)
    }

    /// Submits an already-built [`SessionMachine`] (full control over sort
    /// options; a partially stepped machine resumes where it stood).
    pub fn submit_session(&self, machine: SessionMachine) -> SessionHandle {
        self.submit_machine(machine, self.session_budget, None)
    }

    /// [`Runtime::submit_session`] with an explicit wall-clock budget and a
    /// completion observer, fired exactly once — before any joiner can see
    /// the result — with the session's outcome or error. This is the entry
    /// point for admission controllers (e.g. `ppgr-service`) that track
    /// in-flight counts: the observer runs on the worker that settles the
    /// session, whether it completed, failed, was cancelled or expired.
    pub fn submit_session_observed(
        &self,
        machine: SessionMachine,
        budget: Option<Duration>,
        on_settle: impl FnOnce(&Result<ppgr_core::Outcome, RunError>) + Send + 'static,
    ) -> SessionHandle {
        self.submit_machine(machine, budget, Some(Box::new(on_settle)))
    }

    fn submit_machine(
        &self,
        mut machine: SessionMachine,
        budget: Option<Duration>,
        observer: Option<Observer>,
    ) -> SessionHandle {
        let slot = Slot::new();
        if let Some(observer) = observer {
            slot.observe(observer);
        }
        let handle = SessionHandle {
            slot: Arc::clone(&slot),
        };
        if let Some(buf) = self.shared.donate_scratch() {
            machine.adopt_hop_scratch(buf);
        }
        self.inject(Task {
            machine,
            slot,
            deadline: budget.map(Deadline::after),
        });
        handle
    }

    fn inject(&self, task: Task) {
        self.shared.inject(task);
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(RuntimeConfig::default())
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Refill first: a half-generated stock aborts at its next
        // cancellation poll, so the drain below never waits on offline
        // work nobody will consume.
        self.precompute.shutdown();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(mut task) = find_task(shared, me) {
            // Cancellation and deadlines are enforced at step boundaries:
            // the machine is abandoned (not interrupted), the slot resolves
            // with a typed error, and this worker moves on — a wedged or
            // unwanted session never pins a pool thread.
            if task.slot.is_cancelled() {
                task.slot.fill(Err(RunError::Cancelled));
                continue;
            }
            if task.deadline.is_some_and(|d| d.expired()) {
                task.slot.fill(Err(RunError::DeadlineExceeded));
                continue;
            }
            match task.machine.step() {
                Ok(SessionStatus::Pending) => {
                    // Collect a deferred keygen check *unconditionally* —
                    // even a machine the user built with `defer_verify` and
                    // submitted to a pool with no batch window must have
                    // its proofs settled, or the deferral would silently
                    // skip verification.
                    if let Some(job) = task.machine.take_pending_verify() {
                        if shared.verify_batch > 1 {
                            park_for_verify(shared, Parked { job, task });
                        } else {
                            // Degenerate window: settle immediately inline.
                            match job.verify_inline() {
                                Ok(()) => shared.locals[me]
                                    .lock()
                                    .expect("local deque mutex")
                                    .push_back(task),
                                Err(e) => task.slot.fill(Err(RunError::Sort(e))),
                            }
                        }
                    } else {
                        // Back of our own deque: we pop LIFO, so we keep
                        // driving this session unless a thief takes it
                        // first.
                        shared.locals[me]
                            .lock()
                            .expect("local deque mutex")
                            .push_back(task);
                    }
                }
                Ok(SessionStatus::Done) => {
                    let Task {
                        mut machine, slot, ..
                    } = task;
                    shared.recycle_scratch(machine.take_hop_scratch());
                    let outcome = machine.into_outcome().expect("machine reported Done");
                    slot.fill(Ok(outcome));
                }
                Err(e) => task.slot.fill(Err(e)),
            }
            continue;
        }
        // No runnable task: settle any parked verifies before idling, so a
        // partial window never strands its sessions (and, on shutdown, the
        // drain below sees their resumed tasks).
        if flush_verify(shared) {
            continue;
        }
        // Nothing anywhere. Exit only on shutdown — and because a pending
        // task is always either in some deque, held by the worker that
        // will immediately re-enqueue it to its own deque, or parked in the
        // verify collector (flushed above), every submitted session still
        // completes before the last busy worker exits (drain-on-shutdown).
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.gate.lock().expect("gate mutex");
        // wait_timeout (not wait): a submit could slip in between our scan
        // and the park, so cap the worst-case wakeup latency instead of
        // relying on the notification alone.
        let _ = shared
            .wake
            .wait_timeout(guard, IDLE_PARK)
            .expect("gate condvar");
    }
}

/// Parks a session awaiting its batched keygen verify; flushes the
/// collector if this filled the window.
fn park_for_verify(shared: &Shared, parked: Parked) {
    let full = {
        let mut pending = shared
            .pending_verify
            .lock()
            .expect("verify collector mutex");
        pending.push(parked);
        pending.len() >= shared.verify_batch
    };
    if full {
        let _ = flush_verify(shared);
    }
}

/// Settles every parked keygen check in one aggregate settle
/// ([`verify_deferred_jobs`] — one multi-exponentiation per group kind),
/// failing rejected sessions with the same per-party blame their solo runs
/// would assign and re-enqueueing the survivors. Returns whether anything
/// was flushed.
fn flush_verify(shared: &Shared) -> bool {
    let batch: Vec<Parked> = {
        let mut pending = shared
            .pending_verify
            .lock()
            .expect("verify collector mutex");
        std::mem::take(&mut *pending)
        // Lock released before the expensive aggregate below; a concurrent
        // flush simply takes whatever parked in the meantime.
    };
    if batch.is_empty() {
        return false;
    }
    // Settle cancellations and expiries first — their verdicts are moot.
    let mut live: Vec<Parked> = Vec::with_capacity(batch.len());
    for parked in batch {
        if parked.task.slot.is_cancelled() {
            parked.task.slot.fill(Err(RunError::Cancelled));
        } else if parked.task.deadline.is_some_and(|d| d.expired()) {
            parked.task.slot.fill(Err(RunError::DeadlineExceeded));
        } else {
            live.push(parked);
        }
    }
    if live.is_empty() {
        return true;
    }
    let (jobs, tasks): (Vec<KeygenVerifyJob>, Vec<Task>) =
        live.into_iter().map(|p| (p.job, p.task)).unzip();
    let proofs: u64 = jobs.iter().map(|j| j.proofs() as u64).sum();
    let verdicts = verify_deferred_jobs(&jobs);
    shared.stats.verify_flushes.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .verify_batched_sessions
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    shared
        .stats
        .verify_batched_proofs
        .fetch_add(proofs, Ordering::Relaxed);
    for (task, verdict) in tasks.into_iter().zip(verdicts) {
        match verdict {
            Ok(()) => shared.inject(task),
            Err(e) => task.slot.fill(Err(RunError::Sort(e))),
        }
    }
    true
}

/// Own deque first (LIFO), then the global injector, then steal round-robin
/// from the other workers' deque fronts.
fn find_task(shared: &Shared, me: usize) -> Option<Task> {
    if let Some(task) = shared.locals[me]
        .lock()
        .expect("local deque mutex")
        .pop_back()
    {
        return Some(task);
    }
    if let Some(task) = shared.injector.lock().expect("injector mutex").pop_front() {
        return Some(task);
    }
    let n = shared.locals.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(task) = shared.locals[victim]
            .lock()
            .expect("local deque mutex")
            .pop_front()
        {
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_core::{FrameworkParams, Questionnaire, RunError};
    use ppgr_group::GroupKind;

    fn small_params(n: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(1)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn pooled_sessions_match_solo_serial_runs() {
        let runtime = Runtime::with_workers(3);
        let handles: Vec<_> = (0..4)
            .map(|i| runtime.submit(small_params(3, 1000 + i)))
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let pooled = handle.join().unwrap();
            let solo = GroupRanking::new(small_params(3, 1000 + i as u64))
                .with_random_population()
                .run()
                .unwrap();
            assert_eq!(pooled.ranks(), solo.ranks());
            assert_eq!(pooled.traffic(), solo.traffic());
        }
    }

    #[test]
    fn more_sessions_than_workers_all_complete() {
        let runtime = Runtime::with_workers(2);
        let handles: Vec<_> = (0..6)
            .map(|i| runtime.submit(small_params(2, 50 + i)))
            .collect();
        for handle in handles {
            let outcome = handle.join().unwrap();
            assert_eq!(outcome.ranks().len(), 2);
        }
    }

    #[test]
    fn configuration_error_surfaces_on_join() {
        let runtime = Runtime::with_workers(1);
        // No population supplied → the session fails at machine creation.
        let handle = runtime.submit_ranking(GroupRanking::new(small_params(3, 1)));
        assert_eq!(handle.join().unwrap_err(), RunError::MissingPopulation);
    }

    #[test]
    fn drop_drains_pending_sessions() {
        let runtime = Runtime::with_workers(2);
        let handles: Vec<_> = (0..3)
            .map(|i| runtime.submit(small_params(2, 300 + i)))
            .collect();
        drop(runtime); // joins workers; they must finish everything first
        for handle in handles {
            assert!(handle.is_finished());
            assert!(handle.join().is_ok());
        }
    }

    #[test]
    fn cancelled_queued_session_resolves_without_running() {
        let runtime = Runtime::with_workers(1);
        // The single worker drives the first session LIFO until done, so
        // the second sits queued long enough for the cancel to land.
        let busy = runtime.submit(small_params(3, 61));
        let doomed = runtime.submit(small_params(3, 62));
        doomed.cancel();
        assert_eq!(doomed.join().unwrap_err(), RunError::Cancelled);
        assert!(busy.join().is_ok());
    }

    #[test]
    fn expired_deadline_reclaims_the_worker_for_later_sessions() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            session_budget: Some(Duration::ZERO),
            ..RuntimeConfig::default()
        });
        // Already expired at the first step boundary → abandoned, typed.
        let wedged = runtime.submit(small_params(3, 71));
        assert_eq!(wedged.join().unwrap_err(), RunError::DeadlineExceeded);
        // The worker is free again: an unbounded session completes.
        let healthy = runtime.submit_with_budget(small_params(3, 72), None);
        assert_eq!(healthy.join().unwrap().ranks().len(), 3);
    }

    #[test]
    fn drop_drains_with_crashed_sessions_mixed_in() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            session_budget: None,
            ..RuntimeConfig::default()
        });
        let healthy: Vec<_> = (0..2)
            .map(|i| runtime.submit(small_params(2, 400 + i)))
            .collect();
        // A session dead-on-arrival (zero budget) and a cancelled one.
        let dead = runtime.submit_with_budget(small_params(2, 410), Some(Duration::ZERO));
        let cancelled = runtime.submit(small_params(2, 411));
        cancelled.cancel();
        drop(runtime); // drain must resolve *every* slot, failures included
        assert_eq!(dead.join().unwrap_err(), RunError::DeadlineExceeded);
        // The cancel races the workers: either it landed in time or the
        // session completed first — both resolve, neither hangs the drain.
        match cancelled.join() {
            Err(RunError::Cancelled) | Ok(_) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
        for h in healthy {
            assert!(h.is_finished());
            assert_eq!(h.join().unwrap().ranks().len(), 2);
        }
    }

    #[test]
    fn batched_verify_sessions_match_solo_runs() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            verify_batch: 3,
            ..RuntimeConfig::default()
        });
        let handles: Vec<_> = (0..5)
            .map(|i| runtime.submit(small_params(3, 9000 + i)))
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let pooled = handle.join().unwrap();
            let solo = GroupRanking::new(small_params(3, 9000 + i as u64))
                .with_random_population()
                .run()
                .unwrap();
            assert_eq!(pooled.ranks(), solo.ranks());
            assert_eq!(pooled.traffic(), solo.traffic());
        }
        let stats = runtime.stats();
        assert_eq!(
            stats.verify_batched_sessions, 5,
            "every cold deferred session must pass through the collector"
        );
        assert_eq!(stats.verify_batched_proofs, 15);
        assert!(
            stats.verify_flushes >= 1 && stats.verify_flushes <= 5,
            "flushes happen per window or on idle, got {}",
            stats.verify_flushes
        );
    }

    #[test]
    fn corrupted_proof_is_blamed_through_the_batch() {
        use ppgr_core::{OfflineStock, SortError, SortOptions};
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            verify_batch: 4,
            ..RuntimeConfig::default()
        });
        let options = SortOptions {
            threads: 1,
            defer_verify: true,
            ..SortOptions::default()
        };
        let mut bad = GroupRanking::new(small_params(3, 880))
            .with_random_population()
            .into_machine_with(options)
            .unwrap();
        let mut stock = OfflineStock::generate(bad.offline_fingerprint());
        stock.corrupt_key_proof(&GroupKind::Ecc160.group(), 1);
        assert!(bad.attach_offline_stock(stock));
        let bad_handle = runtime.submit_session(bad);
        let good: Vec<_> = (0..3)
            .map(|i| runtime.submit(small_params(3, 881 + i)))
            .collect();
        let err = bad_handle.join().unwrap_err();
        assert_eq!(
            err,
            RunError::Sort(SortError::ProofRejected { party: 2 }),
            "the batch must attribute the rejection to the corrupted session and party"
        );
        assert_eq!(
            err.blamed(),
            Some(2),
            "session-level blame surfaces the prover"
        );
        for (i, handle) in good.into_iter().enumerate() {
            let pooled = handle.join().unwrap();
            let solo = GroupRanking::new(small_params(3, 881 + i as u64))
                .with_random_population()
                .run()
                .unwrap();
            assert_eq!(pooled.ranks(), solo.ranks(), "good sessions are unaffected");
        }
    }

    #[test]
    fn defer_built_machine_is_still_verified_on_a_non_batching_pool() {
        use ppgr_core::{OfflineStock, SortError, SortOptions};
        // verify_batch 0: the worker must settle the stashed job inline —
        // a deferral must never silently skip verification.
        let runtime = Runtime::with_workers(1);
        let options = SortOptions {
            threads: 1,
            defer_verify: true,
            ..SortOptions::default()
        };
        let mut bad = GroupRanking::new(small_params(3, 890))
            .with_random_population()
            .into_machine_with(options)
            .unwrap();
        let mut stock = OfflineStock::generate(bad.offline_fingerprint());
        stock.corrupt_key_proof(&GroupKind::Ecc160.group(), 0);
        assert!(bad.attach_offline_stock(stock));
        let err = runtime.submit_session(bad).join().unwrap_err();
        assert_eq!(err, RunError::Sort(SortError::ProofRejected { party: 1 }));
        assert_eq!(err.blamed(), Some(1));
        assert_eq!(RunError::Cancelled.blamed(), None);
        assert_eq!(RunError::DeadlineExceeded.blamed(), None);
    }

    #[test]
    fn observer_fires_before_join_resolves() {
        use std::sync::atomic::AtomicU64;
        let runtime = Runtime::with_workers(1);
        let seen = Arc::new(AtomicU64::new(0));
        let machine = GroupRanking::new(small_params(2, 895))
            .with_random_population()
            .into_machine()
            .unwrap();
        let observed = Arc::clone(&seen);
        let handle = runtime.submit_session_observed(machine, None, move |result| {
            if result.is_ok() {
                observed.fetch_add(1, Ordering::SeqCst);
            }
        });
        let outcome = handle.join().unwrap();
        assert_eq!(outcome.ranks().len(), 2);
        assert_eq!(
            seen.load(Ordering::SeqCst),
            1,
            "observer must have fired before join returned"
        );
    }

    #[test]
    fn scratch_buffers_recycle_across_sessions() {
        let runtime = Runtime::with_workers(1);
        // Serial on one worker: the first session's buffer is recycled
        // into later ones.
        for i in 0..3 {
            runtime.submit(small_params(2, 900 + i)).join().unwrap();
        }
        assert!(
            runtime.stats().scratch_reused >= 1,
            "later sessions must reuse the first session's hop buffer"
        );
    }

    #[test]
    fn submit_session_resumes_a_prebuilt_machine() {
        let mut machine = GroupRanking::new(small_params(3, 7))
            .with_random_population()
            .into_machine()
            .unwrap();
        // Step it part-way before handing it to the pool.
        machine.step().unwrap();
        machine.step().unwrap();
        let runtime = Runtime::with_workers(1);
        let pooled = runtime.submit_session(machine).join().unwrap();
        let solo = GroupRanking::new(small_params(3, 7))
            .with_random_population()
            .run()
            .unwrap();
        assert_eq!(pooled.ranks(), solo.ranks());
    }
}
