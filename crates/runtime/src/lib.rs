//! Multi-session throughput runtime.
//!
//! [`GroupRanking::run`](ppgr_core::GroupRanking::run) measures *latency*:
//! one ranking session, every party's crypto fanned out over short-lived
//! scoped threads. This crate measures *throughput*: many independent
//! sessions executed concurrently on one **persistent work-stealing worker
//! pool**, so a deployment serving many groups keeps every core busy
//! without per-call thread churn.
//!
//! The key constraint is the paper's unlinkability argument: within a
//! session, the shuffle-decrypt chain hop of party `P_{j+1}` may only start
//! after `P_j`'s hop finished — pipelining hops *within* a session would
//! expose pre-shuffle sets. Sessions, however, share nothing, so while
//! session A's chain occupies one worker, the pool runs session B's hops on
//! the rest. Each session is a resumable
//! [`SessionMachine`](ppgr_core::SessionMachine) stepped at hop
//! granularity; its seeded DRBG travels with it, so for *any* scheduling a
//! session's transcript and ranks are bit-identical to its solo serial run
//! (pinned by the workspace determinism proptests).
//!
//! # Example
//!
//! ```
//! use ppgr_core::{FrameworkParams, Questionnaire};
//! use ppgr_group::GroupKind;
//! use ppgr_runtime::Runtime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let runtime = Runtime::with_workers(2);
//! let handles: Vec<_> = (0..3)
//!     .map(|seed| {
//!         let params = FrameworkParams::builder(Questionnaire::synthetic(1, 1))
//!             .participants(3)
//!             .top_k(1)
//!             .attr_bits(4)
//!             .weight_bits(2)
//!             .mask_bits(4)
//!             .group(GroupKind::Ecc160)
//!             .seed(seed)
//!             .build()
//!             .expect("valid params");
//!         runtime.submit(params)
//!     })
//!     .collect();
//! for handle in handles {
//!     let outcome = handle.join()?;
//!     assert_eq!(outcome.ranks().len(), 3);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod handle;
mod pool;
mod precompute;

pub use handle::SessionHandle;
pub use pool::{Runtime, RuntimeConfig, RuntimeStats};
pub use precompute::{GroupId, PrecomputeConfig};
