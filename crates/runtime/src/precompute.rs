//! The background precompute pool feeding sessions their offline stocks.
//!
//! A deployment serves *recurring* groups: the same parameter template,
//! session after session, each with the next seed. Between sessions the
//! machine is idle — exactly when the offline work of the next few
//! sessions ([`OfflineStock`]) can be done for free. This module keeps a
//! bounded, deterministic stock lane per registered group:
//!
//! * [`Runtime::register_group`](crate::Runtime::register_group) opens a
//!   lane (and warms the group's fixed-base comb tables);
//! * background refill workers keep each lane topped up to
//!   [`PrecomputeConfig::depth`] stocks, generated strictly by session
//!   sequence number — session `k` of a group uses seed
//!   `base_seed + k`, so the stock for it is
//!   [`OfflineStock::generate`] of that fingerprint, bit-identical to
//!   what the session would build cold;
//! * [`Runtime::submit_group`](crate::Runtime::submit_group) pops the
//!   matching stock if it is ready and attaches it to the session —
//!   otherwise the session simply runs cold. Either way the transcript
//!   is the same; only the online latency differs.
//!
//! Refill generation polls a cancellation hook between parties and hop
//! sets, so dropping the runtime never waits for a half-built stock.

use ppgr_core::{FrameworkParams, OfflineStock, StockFingerprint};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle refill worker sleeps between scans for lanes that
/// need topping up.
const REFILL_PARK: Duration = Duration::from_millis(1);

/// Configuration for the precompute pool of a
/// [`Runtime`](crate::Runtime).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct PrecomputeConfig {
    /// Stocks kept ready per registered group (sessions `next .. next+depth`
    /// are precomputed ahead of their submission). `0` disables
    /// precomputation — every session runs cold.
    pub depth: usize,
    /// Background refill threads shared by all lanes.
    pub refill_workers: usize,
}

impl Default for PrecomputeConfig {
    fn default() -> Self {
        PrecomputeConfig {
            depth: 2,
            refill_workers: 1,
        }
    }
}

/// Identifies a registered recurring group within its runtime.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct GroupId(pub(crate) usize);

/// One registered group's stock lane.
struct Lane {
    /// Parameter template; session `k` runs `params.with_seed(seed + k)`.
    params: FrameworkParams,
    /// Sequence number of the next session to be submitted.
    next_take: u64,
    /// Next sequence number a refill worker will reserve.
    next_refill: u64,
    /// Reservations currently being generated off-lock.
    inflight: usize,
    /// Completed stocks, ascending by sequence number.
    ready: VecDeque<(u64, OfflineStock)>,
}

impl Lane {
    /// Whether a refill worker should reserve another sequence number.
    fn wants_refill(&self, depth: usize) -> bool {
        // Target window: seqs [next_take, next_take + depth). Count what is
        // already ready or being built toward it.
        self.next_refill < self.next_take.saturating_add(depth as u64)
    }
}

struct PoolShared {
    lanes: Mutex<Vec<Lane>>,
    gate: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

/// The background refill pool. Owned by a [`Runtime`](crate::Runtime);
/// shut down (flag + join) before the step workers drain.
pub(crate) struct PrecomputePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    depth: usize,
}

impl PrecomputePool {
    pub(crate) fn new(config: PrecomputeConfig) -> Self {
        let shared = Arc::new(PoolShared {
            lanes: Mutex::new(Vec::new()),
            gate: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // With depth 0 nothing would ever be generated; don't spawn workers
        // that can only spin.
        let worker_count = if config.depth == 0 {
            0
        } else {
            config.refill_workers
        };
        let workers = (0..worker_count)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let depth = config.depth;
                std::thread::Builder::new()
                    .name(format!("ppgr-precompute-{me}"))
                    .spawn(move || refill_loop(&shared, depth))
                    .expect("spawn precompute worker")
            })
            .collect();
        PrecomputePool {
            shared,
            workers,
            depth: config.depth,
        }
    }

    /// Opens a lane for `params` and warms the group's fixed-base comb
    /// tables (generator exponentiations are behind a process-wide cache,
    /// so the first session no longer pays the build).
    ///
    /// Warming is deduplicated by group kind: registering many lanes over
    /// the same group builds the generator tables once, instead of
    /// re-walking the (cheap but not free) cache probe-and-build path on
    /// every registration.
    pub(crate) fn register(&self, params: FrameworkParams) -> GroupId {
        let kind = params.group();
        let mut lanes = self.shared.lanes.lock().expect("lanes mutex");
        let known_kind = lanes.iter().any(|lane| lane.params.group() == kind);
        let id = GroupId(lanes.len());
        lanes.push(Lane {
            params,
            next_take: 0,
            next_refill: 0,
            inflight: 0,
            ready: VecDeque::new(),
        });
        drop(lanes);
        if !known_kind {
            // Outside the lanes lock: table construction is the expensive
            // part and must not serialize concurrent registrations.
            let group = kind.group();
            let _ = group.prepare_base(group.generator());
        }
        self.shared.wake.notify_all();
        id
    }

    /// Claims the next session of group `gid`: its concrete parameters and
    /// the precomputed stock, if the refill workers got there in time
    /// (`None` → the session runs cold).
    ///
    /// # Panics
    ///
    /// Panics if `gid` was not issued by this runtime.
    pub(crate) fn take(&self, gid: GroupId) -> (FrameworkParams, Option<OfflineStock>) {
        let mut lanes = self.shared.lanes.lock().expect("lanes mutex");
        let lane = lanes.get_mut(gid.0).expect("group id from this runtime");
        let seq = lane.next_take;
        lane.next_take += 1;
        // Anything below the claimed seq can never be used again.
        while lane.ready.front().is_some_and(|(s, _)| *s < seq) {
            lane.ready.pop_front();
        }
        let stock = if lane.ready.front().is_some_and(|(s, _)| *s == seq) {
            lane.ready.pop_front().map(|(_, stock)| stock)
        } else {
            None
        };
        let params = lane
            .params
            .clone()
            .with_seed(lane.params.seed().wrapping_add(seq));
        drop(lanes);
        // The claim opened a refill slot at the window's far end.
        self.shared.wake.notify_all();
        (params, stock)
    }

    /// How many stocks are ready for group `gid` right now.
    ///
    /// # Panics
    ///
    /// Panics if `gid` was not issued by this runtime.
    pub(crate) fn ready(&self, gid: GroupId) -> usize {
        let lanes = self.shared.lanes.lock().expect("lanes mutex");
        lanes
            .get(gid.0)
            .expect("group id from this runtime")
            .ready
            .len()
    }

    /// Stops the refill workers: in-progress generations abort at their
    /// next cancellation poll, then the threads are joined. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PrecomputePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for PrecomputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecomputePool")
            .field("workers", &self.workers.len())
            .field("depth", &self.depth)
            .finish()
    }
}

/// Scans the lanes for one that wants refilling and reserves its next
/// sequence number, releasing the lock for the (expensive) generation.
fn reserve(shared: &PoolShared, depth: usize) -> Option<(GroupId, u64, StockFingerprint)> {
    let mut lanes = shared.lanes.lock().expect("lanes mutex");
    for (idx, lane) in lanes.iter_mut().enumerate() {
        if !lane.wants_refill(depth) {
            continue;
        }
        // If submissions outpaced refill, skip straight to the live window
        // instead of generating stocks nobody will ever claim.
        let seq = lane.next_refill.max(lane.next_take);
        lane.next_refill = seq + 1;
        lane.inflight += 1;
        let params = lane
            .params
            .clone()
            .with_seed(lane.params.seed().wrapping_add(seq));
        let fp = StockFingerprint::new(
            params.seed(),
            params.participants(),
            params.beta_bits(),
            params.group(),
        );
        return Some((GroupId(idx), seq, fp));
    }
    None
}

fn refill_loop(shared: &PoolShared, depth: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some((gid, seq, fp)) = reserve(shared, depth) else {
            let guard = shared.gate.lock().expect("gate mutex");
            // wait_timeout: a register/take could slip in between the scan
            // and the park.
            let _ = shared
                .wake
                .wait_timeout(guard, REFILL_PARK)
                .expect("gate condvar");
            continue;
        };
        // The expensive part, off-lock and cancellable: a shutdown mid-stock
        // aborts at the next poll instead of finishing ~n² exponentiations.
        let stock =
            OfflineStock::generate_cancellable(fp, &mut || shared.shutdown.load(Ordering::SeqCst));
        let mut lanes = shared.lanes.lock().expect("lanes mutex");
        let lane = &mut lanes[gid.0];
        lane.inflight -= 1;
        if let Some(stock) = stock {
            // A take may have raced past this seq while we generated; a
            // stale stock would never be claimed, so drop it.
            if seq >= lane.next_take {
                let at = lane.ready.partition_point(|(s, _)| *s < seq);
                lane.ready.insert(at, (seq, stock));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Runtime, RuntimeConfig};
    use ppgr_core::{GroupRanking, Questionnaire};
    use ppgr_group::GroupKind;

    fn small_params(n: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(1)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn runtime(workers: usize, depth: usize) -> Runtime {
        Runtime::new(RuntimeConfig {
            workers,
            precompute: PrecomputeConfig {
                depth,
                refill_workers: 1,
            },
            ..RuntimeConfig::default()
        })
    }

    #[test]
    fn group_sessions_match_solo_runs_with_derived_seeds() {
        // Warm or cold, session k of a group must equal the solo run with
        // seed base + k — the pool only moves work, never changes it.
        let rt = runtime(2, 2);
        let gid = rt.register_group(small_params(3, 9_000));
        let handles: Vec<_> = (0..3).map(|_| rt.submit_group(gid)).collect();
        for (k, handle) in handles.into_iter().enumerate() {
            let pooled = handle.join().unwrap();
            let solo = GroupRanking::new(small_params(3, 9_000 + k as u64))
                .with_random_population()
                .run()
                .unwrap();
            assert_eq!(pooled.ranks(), solo.ranks(), "session {k}");
            assert_eq!(pooled.traffic(), solo.traffic(), "session {k}");
        }
    }

    #[test]
    fn warm_session_matches_solo_run() {
        // Wait until the lane is stocked so the submission definitely
        // consumes a precomputed stock, then compare against solo.
        let rt = runtime(1, 2);
        let gid = rt.register_group(small_params(3, 500));
        while rt.precomputed(gid) == 0 {
            std::thread::yield_now();
        }
        let pooled = rt.submit_group(gid).join().unwrap();
        let solo = GroupRanking::new(small_params(3, 500))
            .with_random_population()
            .run()
            .unwrap();
        assert_eq!(pooled.ranks(), solo.ranks());
        assert_eq!(pooled.traffic(), solo.traffic());
    }

    #[test]
    fn lane_fills_to_depth_and_no_further() {
        let rt = runtime(1, 2);
        let gid = rt.register_group(small_params(2, 40));
        // Refill must reach the configured depth...
        while rt.precomputed(gid) < 2 {
            std::thread::yield_now();
        }
        // ...and never exceed it (give the worker a chance to overshoot).
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rt.precomputed(gid), 2);
    }

    #[test]
    fn depth_zero_disables_precompute_but_sessions_still_run() {
        let rt = runtime(1, 0);
        let gid = rt.register_group(small_params(2, 70));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rt.precomputed(gid), 0);
        let outcome = rt.submit_group(gid).join().unwrap();
        assert_eq!(outcome.ranks().len(), 2);
    }

    #[test]
    fn multiple_lanes_refill_independently() {
        let rt = runtime(1, 1);
        let a = rt.register_group(small_params(2, 100));
        let b = rt.register_group(small_params(3, 200));
        while rt.precomputed(a) < 1 || rt.precomputed(b) < 1 {
            std::thread::yield_now();
        }
        let oa = rt.submit_group(a).join().unwrap();
        let ob = rt.submit_group(b).join().unwrap();
        assert_eq!(oa.ranks().len(), 2);
        assert_eq!(ob.ranks().len(), 3);
    }

    #[test]
    fn drop_mid_refill_does_not_hang() {
        // A large lane keeps the refill worker busy generating when the
        // runtime drops; the cancellation hook must abort the in-progress
        // stock instead of finishing it.
        let rt = runtime(1, 4);
        for i in 0..4 {
            let _ = rt.register_group(small_params(8, 1_000 * (i + 1)));
        }
        drop(rt); // must return promptly; a hang fails the test harness
    }
}
