//! Montgomery-form modular arithmetic for odd moduli.
//!
//! All group exponentiations in the framework (DL-group ElGamal, Schnorr
//! proofs, partial decryptions) funnel through [`Montgomery::pow`], so this
//! is the performance-critical kernel of the whole reproduction. The inner
//! loops work on fixed-capacity stack buffers ([`MAX_LIMBS`]) — no heap
//! allocation per multiplication.

// The limb kernels walk several same-index arrays (operand, modulus,
// accumulator) while threading a carry/borrow; indexed loops are the
// clearest rendering and clippy's zip/iterator rewrite obscures them.
#![allow(clippy::needless_range_loop)]

use crate::uint::BigUint;

/// Maximum modulus size in limbs (3072-bit DL group = 48 limbs).
pub const MAX_LIMBS: usize = 48;

/// An element held in Montgomery form (`a·R mod n`).
///
/// Produced by [`Montgomery::enter`]; staying in Montgomery form across a
/// long computation (e.g. an elliptic-curve scalar multiplication) avoids
/// the per-operation domain conversions of [`Montgomery::mul`].
#[derive(Clone, Debug)]
pub struct MontElem {
    limbs: [u64; MAX_LIMBS],
}

impl PartialEq for MontElem {
    fn eq(&self, other: &Self) -> bool {
        self.limbs == other.limbs
    }
}

impl Eq for MontElem {}

/// Precomputed context for Montgomery multiplication modulo an odd `n`.
///
/// # Example
///
/// ```
/// use ppgr_bigint::{BigUint, Montgomery};
///
/// let m = Montgomery::new(BigUint::from(101u64));
/// let a = BigUint::from(7u64);
/// assert_eq!(m.pow(&a, &BigUint::from(100u64)), BigUint::one()); // Fermat
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: BigUint,
    /// Modulus limbs, padded into a fixed buffer.
    n_limbs: [u64; MAX_LIMBS],
    /// Number of significant limbs of `n`.
    limbs: usize,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64·limbs)`; used to enter Montgomery form.
    r2: MontElem,
    /// `R mod n`, i.e. Montgomery form of `1`.
    r1: MontElem,
}

impl Montgomery {
    /// Builds a context for the odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero, or wider than [`MAX_LIMBS`] limbs.
    pub fn new(n: BigUint) -> Self {
        assert!(n.is_odd(), "Montgomery reduction requires an odd modulus");
        let limbs = n.limbs().len();
        assert!(limbs <= MAX_LIMBS, "modulus exceeds MAX_LIMBS");
        let n0 = n.limbs()[0];
        // Newton iteration for the inverse of n mod 2^64.
        let mut inv = n0; // valid to 3 bits
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        let mut n_limbs = [0u64; MAX_LIMBS];
        n_limbs[..limbs].copy_from_slice(n.limbs());
        let r1_big = BigUint::power_of_two(64 * limbs) % &n;
        let r2_big = BigUint::power_of_two(128 * limbs) % &n;
        let to_fixed = |v: &BigUint| {
            let mut out = [0u64; MAX_LIMBS];
            out[..v.limbs().len()].copy_from_slice(v.limbs());
            MontElem { limbs: out }
        };
        Montgomery {
            n_limbs,
            limbs,
            n_prime,
            r2: to_fixed(&r2_big),
            r1: to_fixed(&r1_big),
            n,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// CIOS Montgomery multiplication specialised to an `S`-limb modulus.
    ///
    /// The working buffer is `S` limbs plus two scalar overflow words, so
    /// small moduli (the elliptic-curve fields) never touch — or zero — the
    /// full [`MAX_LIMBS`] scratch space. This monomorphised kernel is what
    /// makes ECC field arithmetic several times faster than the generic
    /// path: at 3 limbs the memset/copy overhead of 48-limb buffers costs
    /// more than the multiplication itself.
    #[inline]
    fn mont_mul_small<const S: usize>(
        &self,
        a: &[u64; MAX_LIMBS],
        b: &[u64; MAX_LIMBS],
    ) -> [u64; MAX_LIMBS] {
        let n = &self.n_limbs;
        let mut t = [0u64; S];
        let mut t_hi = 0u64; // t[S]
        for i in 0..S {
            let ai = a[i];
            let mut carry = 0u128;
            for j in 0..S {
                let v = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = v as u64;
                carry = v >> 64;
            }
            let v = t_hi as u128 + carry;
            t_hi = v as u64;
            let t_top = (v >> 64) as u64; // t[S+1]
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry = (t[0] as u128 + m as u128 * n[0] as u128) >> 64;
            for j in 1..S {
                let v = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = t_hi as u128 + carry;
            t[S - 1] = v as u64;
            t_hi = t_top + ((v >> 64) as u64);
        }
        // Conditional subtraction: t may be in [0, 2n).
        let ge = t_hi != 0 || {
            let mut ge = true;
            for i in (0..S).rev() {
                if t[i] != n[i] {
                    ge = t[i] > n[i];
                    break;
                }
            }
            ge
        };
        if ge {
            let mut borrow = 0u64;
            for i in 0..S {
                let v = (t[i] as u128).wrapping_sub(n[i] as u128 + borrow as u128);
                t[i] = v as u64;
                borrow = ((v >> 64) as u64) & 1;
            }
        }
        let mut out = [0u64; MAX_LIMBS];
        out[..S].copy_from_slice(&t);
        out
    }

    /// CIOS Montgomery multiplication on fixed buffers.
    fn mont_mul_fixed(&self, a: &[u64; MAX_LIMBS], b: &[u64; MAX_LIMBS]) -> [u64; MAX_LIMBS] {
        // The elliptic-curve fields (3–4 limbs) dominate the framework's
        // runtime; give them fully unrolled kernels.
        match self.limbs {
            1 => return self.mont_mul_small::<1>(a, b),
            2 => return self.mont_mul_small::<2>(a, b),
            3 => return self.mont_mul_small::<3>(a, b),
            4 => return self.mont_mul_small::<4>(a, b),
            _ => {}
        }
        let s = self.limbs;
        let n = &self.n_limbs;
        let mut t = [0u64; MAX_LIMBS + 2];
        for i in 0..s {
            let ai = a[i];
            // t += ai * b
            let mut carry = 0u128;
            if ai != 0 {
                for j in 0..s {
                    let v = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                    t[j] = v as u64;
                    carry = v >> 64;
                }
            }
            let v = t[s] as u128 + carry;
            t[s] = v as u64;
            t[s + 1] = (v >> 64) as u64;
            // m = t[0] * n' mod 2^64;  t = (t + m·n) / 2^64
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry = (t[0] as u128 + m as u128 * n[0] as u128) >> 64;
            for j in 1..s {
                let v = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = t[s] as u128 + carry;
            t[s - 1] = v as u64;
            t[s] = t[s + 1] + (v >> 64) as u64;
            t[s + 1] = 0;
        }
        // Conditional subtraction: t may be in [0, 2n).
        let mut out = [0u64; MAX_LIMBS];
        out[..s].copy_from_slice(&t[..s]);
        if t[s] != 0 || !Self::less_than(&out, n, s) {
            Self::sub_in_place(&mut out, n, s, t[s]);
        }
        out
    }

    #[inline]
    fn less_than(a: &[u64; MAX_LIMBS], b: &[u64; MAX_LIMBS], s: usize) -> bool {
        for i in (0..s).rev() {
            if a[i] != b[i] {
                return a[i] < b[i];
            }
        }
        false
    }

    #[inline]
    fn sub_in_place(a: &mut [u64; MAX_LIMBS], b: &[u64; MAX_LIMBS], s: usize, _hi: u64) {
        let mut borrow = 0u64;
        for i in 0..s {
            let t = (a[i] as u128).wrapping_sub(b[i] as u128 + borrow as u128);
            a[i] = t as u64;
            borrow = ((t >> 64) as u64) & 1;
        }
    }

    /// Enters Montgomery form.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` (callers reduce first; this is the hot path).
    pub fn enter(&self, a: &BigUint) -> MontElem {
        assert!(a < &self.n, "operand must be reduced");
        let mut buf = [0u64; MAX_LIMBS];
        buf[..a.limbs().len()].copy_from_slice(a.limbs());
        MontElem {
            limbs: self.mont_mul_fixed(&buf, &self.r2.limbs),
        }
    }

    /// Leaves Montgomery form.
    pub fn leave(&self, a: &MontElem) -> BigUint {
        let mut one = [0u64; MAX_LIMBS];
        one[0] = 1;
        let out = self.mont_mul_fixed(&a.limbs, &one);
        BigUint::from_limbs(out[..self.limbs].to_vec())
    }

    /// Montgomery form of `1`.
    pub fn one_elem(&self) -> MontElem {
        self.r1.clone()
    }

    /// Montgomery form of `0`.
    pub fn zero_elem(&self) -> MontElem {
        MontElem {
            limbs: [0u64; MAX_LIMBS],
        }
    }

    /// Returns `true` if the element is zero (zero is fixed by the domain map).
    pub fn is_zero_elem(&self, a: &MontElem) -> bool {
        a.limbs[..self.limbs].iter().all(|&l| l == 0)
    }

    /// In-domain multiplication.
    pub fn mmul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem {
            limbs: self.mont_mul_fixed(&a.limbs, &b.limbs),
        }
    }

    /// In-domain squaring.
    pub fn msqr(&self, a: &MontElem) -> MontElem {
        self.mmul(a, a)
    }

    /// Modular addition on an `S`-limb modulus (small-size kernel).
    #[inline]
    fn add_small<const S: usize>(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let n = &self.n_limbs;
        let mut t = [0u64; S];
        let mut carry = 0u128;
        for i in 0..S {
            let v = a.limbs[i] as u128 + b.limbs[i] as u128 + carry;
            t[i] = v as u64;
            carry = v >> 64;
        }
        let ge = carry != 0 || {
            let mut ge = true;
            for i in (0..S).rev() {
                if t[i] != n[i] {
                    ge = t[i] > n[i];
                    break;
                }
            }
            ge
        };
        if ge {
            let mut borrow = 0u64;
            for i in 0..S {
                let v = (t[i] as u128).wrapping_sub(n[i] as u128 + borrow as u128);
                t[i] = v as u64;
                borrow = ((v >> 64) as u64) & 1;
            }
        }
        let mut out = [0u64; MAX_LIMBS];
        out[..S].copy_from_slice(&t);
        MontElem { limbs: out }
    }

    /// Modular subtraction on an `S`-limb modulus (small-size kernel).
    #[inline]
    fn sub_small<const S: usize>(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut t = [0u64; S];
        let mut borrow = 0u64;
        for i in 0..S {
            let v = (a.limbs[i] as u128).wrapping_sub(b.limbs[i] as u128 + borrow as u128);
            t[i] = v as u64;
            borrow = ((v >> 64) as u64) & 1;
        }
        if borrow != 0 {
            let mut carry = 0u128;
            for i in 0..S {
                let v = t[i] as u128 + self.n_limbs[i] as u128 + carry;
                t[i] = v as u64;
                carry = v >> 64;
            }
        }
        let mut out = [0u64; MAX_LIMBS];
        out[..S].copy_from_slice(&t);
        MontElem { limbs: out }
    }

    /// In-domain addition (Montgomery form is linear, so plain modular add).
    pub fn madd(&self, a: &MontElem, b: &MontElem) -> MontElem {
        match self.limbs {
            1 => return self.add_small::<1>(a, b),
            2 => return self.add_small::<2>(a, b),
            3 => return self.add_small::<3>(a, b),
            4 => return self.add_small::<4>(a, b),
            _ => {}
        }
        let s = self.limbs;
        let mut out = [0u64; MAX_LIMBS];
        let mut carry = 0u128;
        for i in 0..s {
            let v = a.limbs[i] as u128 + b.limbs[i] as u128 + carry;
            out[i] = v as u64;
            carry = v >> 64;
        }
        if carry != 0 || !Self::less_than(&out, &self.n_limbs, s) {
            Self::sub_in_place(&mut out, &self.n_limbs, s, carry as u64);
        }
        MontElem { limbs: out }
    }

    /// In-domain subtraction.
    pub fn msub(&self, a: &MontElem, b: &MontElem) -> MontElem {
        match self.limbs {
            1 => return self.sub_small::<1>(a, b),
            2 => return self.sub_small::<2>(a, b),
            3 => return self.sub_small::<3>(a, b),
            4 => return self.sub_small::<4>(a, b),
            _ => {}
        }
        let s = self.limbs;
        let mut out = [0u64; MAX_LIMBS];
        let mut borrow = 0u64;
        for i in 0..s {
            let t = (a.limbs[i] as u128).wrapping_sub(b.limbs[i] as u128 + borrow as u128);
            out[i] = t as u64;
            borrow = ((t >> 64) as u64) & 1;
        }
        if borrow != 0 {
            // Add the modulus back.
            let mut carry = 0u128;
            for i in 0..s {
                let v = out[i] as u128 + self.n_limbs[i] as u128 + carry;
                out[i] = v as u64;
                carry = v >> 64;
            }
        }
        MontElem { limbs: out }
    }

    /// In-domain doubling.
    pub fn mdbl(&self, a: &MontElem) -> MontElem {
        self.madd(a, a)
    }

    /// In-domain small-constant multiple (`k` small; repeated doubling).
    pub fn msmall(&self, a: &MontElem, k: u64) -> MontElem {
        let mut acc = self.zero_elem();
        let mut base = a.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = self.madd(&acc, &base);
            }
            k >>= 1;
            if k > 0 {
                base = self.mdbl(&base);
            }
        }
        acc
    }

    /// In-domain windowed exponentiation: `a^exp` staying in Montgomery
    /// form throughout (no per-call domain conversions).
    pub fn mpow(&self, base: &MontElem, exp: &BigUint) -> MontElem {
        if exp.is_zero() {
            return self.one_elem();
        }
        let bits = exp.bits();
        if bits <= 32 {
            // Small exponent: plain square-and-multiply beats building a
            // 16-entry window table.
            let mut acc = base.clone();
            for i in (0..bits - 1).rev() {
                acc = self.msqr(&acc);
                if exp.bit(i) {
                    acc = self.mmul(&acc, base);
                }
            }
            return acc;
        }
        // Precompute base^0..base^15.
        let mut table = Vec::with_capacity(16);
        table.push(self.one_elem());
        table.push(base.clone());
        for i in 2..16 {
            let prev = self.mmul(&table[i - 1], base);
            table.push(prev);
        }
        let mut acc: Option<MontElem> = None;
        let mut i = bits;
        while i > 0 {
            let take = if i.is_multiple_of(4) { 4 } else { i % 4 };
            let mut window = 0usize;
            for k in 0..take {
                window = window << 1 | exp.bit(i - 1 - k) as usize;
            }
            acc = Some(match acc {
                None => table[window].clone(),
                Some(mut a) => {
                    for _ in 0..take {
                        a = self.msqr(&a);
                    }
                    if window != 0 {
                        a = self.mmul(&a, &table[window]);
                    }
                    a
                }
            });
            i -= take;
        }
        acc.expect("nonzero exponent")
    }

    /// Shared-recoding batch exponentiation: raises every base to the
    /// *same* exponent. The exponent's 4-bit window digits are recoded
    /// once and replayed for every base, so each base pays only its own
    /// 16-entry table plus the shared square-and-multiply schedule. This
    /// is the shape of a partial decryption across a whole ciphertext
    /// set: one secret key share, many `β` components.
    pub fn mpow_many(&self, bases: &[MontElem], exp: &BigUint) -> Vec<MontElem> {
        if bases.is_empty() {
            return Vec::new();
        }
        if exp.is_zero() {
            return vec![self.one_elem(); bases.len()];
        }
        // MSB-first window digits, identical to the `mpow` schedule.
        let bits = exp.bits();
        let mut digits: Vec<(usize, u32)> = Vec::with_capacity(bits.div_ceil(4));
        let mut i = bits;
        while i > 0 {
            let take = if i.is_multiple_of(4) { 4 } else { i % 4 };
            let mut window = 0usize;
            for k in 0..take {
                window = window << 1 | exp.bit(i - 1 - k) as usize;
            }
            digits.push((window, take as u32));
            i -= take;
        }
        bases
            .iter()
            .map(|base| {
                let mut table = Vec::with_capacity(16);
                table.push(self.one_elem());
                table.push(base.clone());
                for i in 2..16 {
                    let prev = self.mmul(&table[i - 1], base);
                    table.push(prev);
                }
                let mut acc: Option<MontElem> = None;
                for &(window, take) in &digits {
                    acc = Some(match acc {
                        None => table[window].clone(),
                        Some(mut a) => {
                            for _ in 0..take {
                                a = self.msqr(&a);
                            }
                            if window != 0 {
                                a = self.mmul(&a, &table[window]);
                            }
                            a
                        }
                    });
                }
                acc.expect("nonzero exponent")
            })
            .collect()
    }

    /// In-domain inverse of a nonzero element via Fermat's little theorem
    /// (`a^{n-2}`); the modulus must be prime, which holds for every modulus
    /// the framework inverts under (curve fields, DL primes, group orders).
    ///
    /// This is several times faster than a [`BigUint`] extended-GCD inverse
    /// because it runs entirely on fixed-size Montgomery limbs.
    pub fn minv(&self, a: &MontElem) -> MontElem {
        let e = self
            .n
            .checked_sub(&BigUint::from(2u64))
            .expect("modulus is at least 3");
        self.mpow(a, &e)
    }

    /// Batch in-domain inversion by Montgomery's trick: one [`Self::minv`]
    /// plus three multiplications per element instead of one inversion each.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn batch_minv(&self, elems: &[MontElem]) -> Vec<MontElem> {
        if elems.is_empty() {
            return Vec::new();
        }
        // prefix[i] = elems[0]·…·elems[i]
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = elems[0].clone();
        assert!(!self.is_zero_elem(&acc), "cannot invert zero");
        prefix.push(acc.clone());
        for e in &elems[1..] {
            assert!(!self.is_zero_elem(e), "cannot invert zero");
            acc = self.mmul(&acc, e);
            prefix.push(acc.clone());
        }
        let mut inv_acc = self.minv(prefix.last().expect("nonempty"));
        let mut out = vec![self.zero_elem(); elems.len()];
        for i in (1..elems.len()).rev() {
            out[i] = self.mmul(&inv_acc, &prefix[i - 1]);
            inv_acc = self.mmul(&inv_acc, &elems[i]);
        }
        out[0] = inv_acc;
        out
    }

    /// Modular multiplication `a·b mod n` (operands in plain form).
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.enter(&(a % &self.n));
        let bm = self.enter(&(b % &self.n));
        self.leave(&self.mmul(&am, &bm))
    }

    /// Modular squaring `a² mod n`.
    pub fn sqr(&self, a: &BigUint) -> BigUint {
        self.mul(a, a)
    }

    /// Windowed modular exponentiation `base^exp mod n`.
    ///
    /// Uses a fixed 4-bit window; the exponent is processed left-to-right.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % &self.n;
        }
        let base = base % &self.n;
        let bm = self.enter(&base);
        self.leave(&self.mpow(&bm, exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_modpow(base: &BigUint, exp: &BigUint, n: &BigUint) -> BigUint {
        let mut acc = BigUint::one() % n;
        let mut b = base % n;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = &(&acc * &b) % n;
            }
            b = &(&b * &b) % n;
        }
        acc
    }

    #[test]
    fn mul_matches_plain_reduction() {
        let n = BigUint::from_dec_str("170141183460469231731687303715884105727").unwrap(); // 2^127-1
        let m = Montgomery::new(n.clone());
        let a = BigUint::from_dec_str("123456789123456789123456789").unwrap();
        let b = BigUint::from_dec_str("987654321987654321987654321").unwrap();
        assert_eq!(m.mul(&a, &b), &(&a * &b) % &n);
    }

    #[test]
    fn pow_matches_naive_small() {
        let n = BigUint::from(1_000_003u64);
        let m = Montgomery::new(n.clone());
        for (b, e) in [(2u64, 10u64), (3, 0), (12345, 67891), (999999, 1000002)] {
            let b = BigUint::from(b);
            let e = BigUint::from(e);
            assert_eq!(m.pow(&b, &e), naive_modpow(&b, &e, &n), "b^e mod n");
        }
    }

    #[test]
    fn pow_matches_naive_multilimb() {
        let n = BigUint::from_hex_str("f0000000000000000000000000000000000000000000000000000001d")
            .unwrap();
        let n = if n.is_even() { &n + &BigUint::one() } else { n };
        let m = Montgomery::new(n.clone());
        let b = BigUint::from_hex_str("abcdef0123456789abcdef0123456789abcdef").unwrap();
        let e = BigUint::from_hex_str("123456789abcdef0123456789").unwrap();
        assert_eq!(m.pow(&b, &e), naive_modpow(&b, &e, &n));
    }

    #[test]
    fn pow_zero_and_one_exponents() {
        let n = BigUint::from(97u64);
        let m = Montgomery::new(n);
        let b = BigUint::from(5u64);
        assert_eq!(m.pow(&b, &BigUint::zero()), BigUint::one());
        assert_eq!(m.pow(&b, &BigUint::one()), b);
    }

    #[test]
    fn base_larger_than_modulus_is_reduced() {
        let n = BigUint::from(101u64);
        let m = Montgomery::new(n);
        let b = BigUint::from(10_100u64 + 7);
        assert_eq!(m.pow(&b, &BigUint::from(2u64)), BigUint::from(49u64));
    }

    #[test]
    fn fermat_little_theorem_on_prime() {
        // 2^521 - 1 is prime (Mersenne).
        let p = BigUint::power_of_two(521)
            .checked_sub(&BigUint::one())
            .unwrap();
        let m = Montgomery::new(p.clone());
        let a = BigUint::from(123456789u64);
        let e = p.checked_sub(&BigUint::one()).unwrap();
        assert_eq!(m.pow(&a, &e), BigUint::one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(BigUint::from(100u64));
    }

    #[test]
    fn mont_elem_ring_ops() {
        let n = BigUint::from(1_000_003u64);
        let m = Montgomery::new(n.clone());
        let a = BigUint::from(999_999u64);
        let b = BigUint::from(777u64);
        let am = m.enter(&a);
        let bm = m.enter(&b);
        assert_eq!(m.leave(&m.mmul(&am, &bm)), &(&a * &b) % &n);
        assert_eq!(m.leave(&m.madd(&am, &bm)), &(&a + &b) % &n);
        assert_eq!(m.leave(&m.msub(&bm, &am)), &(&(&b + &n) - &a) % &n);
        assert_eq!(m.leave(&m.msqr(&am)), &(&a * &a) % &n);
        assert_eq!(m.leave(&m.msmall(&bm, 8)), BigUint::from(777u64 * 8));
        assert_eq!(m.leave(&m.one_elem()), BigUint::one());
        assert!(m.is_zero_elem(&m.zero_elem()));
        assert_eq!(m.leave(&m.enter(&BigUint::zero())), BigUint::zero());
    }

    #[test]
    fn madd_handles_wraparound_near_modulus() {
        let n = BigUint::from(1_000_003u64);
        let m = Montgomery::new(n.clone());
        let a = BigUint::from(1_000_002u64);
        let am = m.enter(&a);
        // (n-1) + (n-1) ≡ n-2
        assert_eq!(m.leave(&m.madd(&am, &am)), BigUint::from(1_000_001u64));
        // (n-1) - 0 = n-1 ; 0 - (n-1) = 1
        let zero = m.zero_elem();
        assert_eq!(m.leave(&m.msub(&zero, &am)), BigUint::one());
    }

    #[test]
    fn mpow_matches_pow_across_limb_sizes() {
        // Exercises the 1-, 2-, 3-, 4-limb kernels and the generic path.
        for hex in [
            "65",                                                               // 1 limb
            "7fffffffffffffffffffffffffffffff",                                 // 2 limbs
            "ffffffffffffffffffffffffffffffff7fffffff", // 3 limbs (secp160r1 p)
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff", // 4 limbs
        ] {
            let n = BigUint::from_hex_str(hex).unwrap();
            let m = Montgomery::new(n.clone());
            let b = BigUint::from(0x1234_5678_9abcu64) % &n;
            for e in [0u64, 1, 2, 7, 15, 16, 255, 65537] {
                let e = BigUint::from(e);
                let via_mpow = m.leave(&m.mpow(&m.enter(&b), &e));
                assert_eq!(via_mpow, naive_modpow(&b, &e, &n), "n={hex} e={e:?}");
            }
        }
    }

    #[test]
    fn mpow_many_matches_mpow() {
        let n = BigUint::from_hex_str("ffffffffffffffffffffffffffffffff7fffffff").unwrap();
        let m = Montgomery::new(n.clone());
        let bases: Vec<MontElem> = [2u64, 3, 0x1234_5678_9abc, 999_999_937, 1]
            .iter()
            .map(|&v| m.enter(&BigUint::from(v)))
            .collect();
        for e in [0u64, 1, 15, 65537, u64::MAX] {
            let e = BigUint::from(e);
            let batch = m.mpow_many(&bases, &e);
            assert_eq!(batch.len(), bases.len());
            for (b, out) in bases.iter().zip(&batch) {
                assert_eq!(m.leave(out), m.leave(&m.mpow(b, &e)), "e={e:?}");
            }
        }
        assert!(m.mpow_many(&[], &BigUint::from(7u64)).is_empty());
    }

    #[test]
    fn minv_inverts_mod_prime() {
        let p = BigUint::from_hex_str("ffffffffffffffffffffffffffffffff7fffffff").unwrap();
        let m = Montgomery::new(p);
        let a = m.enter(&BigUint::from(123_456_789u64));
        let inv = m.minv(&a);
        assert_eq!(m.leave(&m.mmul(&a, &inv)), BigUint::one());
    }

    #[test]
    fn batch_minv_matches_minv() {
        let p = BigUint::from(1_000_003u64);
        let m = Montgomery::new(p);
        let elems: Vec<MontElem> = [3u64, 999_999, 42, 1, 500_001]
            .iter()
            .map(|&v| m.enter(&BigUint::from(v)))
            .collect();
        let batch = m.batch_minv(&elems);
        assert_eq!(batch.len(), elems.len());
        for (e, inv) in elems.iter().zip(&batch) {
            assert_eq!(m.leave(&m.mmul(e, inv)), BigUint::one());
        }
        assert!(m.batch_minv(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn batch_minv_rejects_zero() {
        let m = Montgomery::new(BigUint::from(97u64));
        let _ = m.batch_minv(&[m.zero_elem()]);
    }

    #[test]
    fn large_modulus_boundary_48_limbs() {
        // A 3072-bit odd modulus (exactly MAX_LIMBS limbs).
        let n = BigUint::power_of_two(3072)
            .checked_sub(&BigUint::from(1105u64))
            .unwrap();
        assert!(n.is_odd());
        let m = Montgomery::new(n.clone());
        let a = BigUint::power_of_two(3000);
        let e = BigUint::from(65537u64);
        assert_eq!(m.pow(&a, &e), naive_modpow(&a, &e, &n));
    }
}
