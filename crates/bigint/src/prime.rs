//! Probabilistic primality testing (Miller–Rabin) and prime generation.

use crate::montgomery::Montgomery;
use crate::random::{random_below, random_nbit};
use crate::uint::BigUint;
use rand::Rng;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Runs `rounds` of Miller–Rabin with random bases.
///
/// A composite passes with probability at most `4^-rounds`; 40 rounds is the
/// conventional "cryptographic certainty" setting.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let two = BigUint::from(2u64);
    if n < &two {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from(p);
        if n == &p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }
    // n - 1 = d · 2^s
    let one = BigUint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n >= 2");
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.shr(s);
    let mont = Montgomery::new(n.clone());

    let n_minus_3 = n.checked_sub(&BigUint::from(3u64)).expect("n > 3");
    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2]
        let a = &random_below(rng, &n_minus_3) + &two;
        let mut x = mont.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = mont.sqr(&x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The candidate stream is odd `bits`-bit integers; each is trial-divided and
/// then subjected to 40 Miller–Rabin rounds.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_nbit(rng, bits);
        candidate.set_bit(0, true);
        if is_probable_prime(&candidate, 40, rng) {
            return candidate;
        }
    }
}

/// Generates a random *safe* prime `p = 2q + 1` (`q` also prime) of `bits` bits.
///
/// Exposed for completeness/tests; the framework itself ships fixed RFC 3526
/// safe primes because live safe-prime generation at 1024+ bits is slow.
pub fn random_safe_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 3, "safe primes need at least 3 bits");
    loop {
        let q = random_prime(rng, bits - 1);
        let p = &q.shl(1) + &BigUint::one();
        if p.bits() == bits && is_probable_prime(&p, 40, rng) {
            return p;
        }
    }
}

/// Checks whether `p` is a safe prime (`p` and `(p-1)/2` both probable primes).
pub fn is_safe_prime<R: Rng + ?Sized>(p: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if p.is_even() || !is_probable_prime(p, rounds, rng) {
        return false;
    }
    let q = p.checked_sub(&BigUint::one()).expect("p >= 3").shr(1);
    is_probable_prime(&q, rounds, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classifies_small_numbers() {
        let mut rng = StdRng::seed_from_u64(7);
        let primes = [2u64, 3, 5, 7, 11, 13, 257, 65537, 1_000_003];
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 6601, 62745, 1_000_001];
        for p in primes {
            assert!(is_probable_prime(&BigUint::from(p), 20, &mut rng), "{p}");
        }
        // 561, 6601, 62745 are Carmichael numbers — MR must still reject them.
        for c in composites {
            assert!(!is_probable_prime(&BigUint::from(c), 20, &mut rng), "{c}");
        }
    }

    #[test]
    fn recognizes_mersenne_prime() {
        let mut rng = StdRng::seed_from_u64(8);
        let m521 = BigUint::power_of_two(521)
            .checked_sub(&BigUint::one())
            .unwrap();
        assert!(is_probable_prime(&m521, 10, &mut rng));
        let m523 = BigUint::power_of_two(523)
            .checked_sub(&BigUint::one())
            .unwrap();
        assert!(!is_probable_prime(&m523, 10, &mut rng));
    }

    #[test]
    fn generates_primes_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(9);
        for bits in [8usize, 32, 64, 128] {
            let p = random_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 20, &mut rng));
        }
    }

    #[test]
    fn generates_safe_prime() {
        let mut rng = StdRng::seed_from_u64(10);
        let p = random_safe_prime(&mut rng, 48);
        assert!(is_safe_prime(&p, 20, &mut rng));
        assert_eq!(p.bits(), 48);
    }

    #[test]
    fn known_safe_prime_detected() {
        let mut rng = StdRng::seed_from_u64(11);
        // 23 = 2·11 + 1 is safe; 13 is prime but not safe.
        assert!(is_safe_prime(&BigUint::from(23u64), 20, &mut rng));
        assert!(!is_safe_prime(&BigUint::from(13u64), 20, &mut rng));
    }
}
