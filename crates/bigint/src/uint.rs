//! The [`BigUint`] representation: little-endian `u64` limbs plus
//! construction, conversion, comparison, bit access and formatting.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An arbitrary-precision unsigned integer.
///
/// Limbs are stored little-endian in a `Vec<u64>` and kept *normalized*: the
/// most significant limb is never zero, and zero is the empty vector. All
/// public constructors and operators maintain this invariant.
///
/// # Example
///
/// ```
/// use ppgr_bigint::BigUint;
///
/// let x = BigUint::from(0xdead_beefu64);
/// assert_eq!(format!("{x:x}"), "deadbeef");
/// assert_eq!(x.bits(), 32);
/// ```
#[derive(Clone, Default, Eq, PartialEq)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct ParseBigUintError {
    pub(crate) kind: &'static str,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.kind)
    }
}

impl Error for ParseBigUintError {}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// `2` raised to `exp`, i.e. a single set bit at position `exp`.
    pub fn power_of_two(exp: usize) -> Self {
        let mut limbs = vec![0u64; exp / 64 + 1];
        limbs[exp / 64] = 1u64 << (exp % 64);
        BigUint { limbs }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    /// Borrows the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Overwrites every limb with zero and empties the vector, leaving the
    /// value equal to `0`. Best-effort scrubbing used by
    /// [`crate::Secret`]'s drop path.
    pub fn wipe_limbs(&mut self) {
        for limb in self.limbs.iter_mut() {
            *limb = 0;
        }
        self.limbs.clear();
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            if !value {
                return;
            }
            self.limbs.resize(limb + 1, 0);
        }
        if value {
            self.limbs[limb] |= 1u64 << (i % 64);
        } else {
            self.limbs[limb] &= !(1u64 << (i % 64));
            self.normalize();
        }
    }

    /// Little-endian bit vector of the low `n` bits.
    ///
    /// This is the binary decomposition `[β^1, β^2, …, β^n]` (least
    /// significant first) used by the bitwise encryption step of the
    /// framework.
    pub fn to_bits_le(&self, n: usize) -> Vec<bool> {
        (0..n).map(|i| self.bit(i)).collect()
    }

    /// Reconstructs a value from little-endian bits.
    pub fn from_bits_le(bits: &[bool]) -> Self {
        let mut v = BigUint::zero();
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set_bit(i, true);
            }
        }
        v
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Big-endian byte representation without leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = limb << 8 | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-hex character. Embedded ASCII whitespace is ignored so that
    /// multi-line constants (e.g. RFC 3526 primes) can be pasted verbatim.
    pub fn from_hex_str(s: &str) -> Result<Self, ParseBigUintError> {
        let digits: Vec<u8> = s
            .bytes()
            .filter(|b| !b.is_ascii_whitespace())
            .map(|b| match b {
                b'0'..=b'9' => Ok(b - b'0'),
                b'a'..=b'f' => Ok(b - b'a' + 10),
                b'A'..=b'F' => Ok(b - b'A' + 10),
                _ => Err(ParseBigUintError {
                    kind: "non-hex digit",
                }),
            })
            .collect::<Result<_, _>>()?;
        if digits.is_empty() {
            return Err(ParseBigUintError {
                kind: "empty literal",
            });
        }
        let mut v = BigUint::zero();
        for d in digits {
            v = v.shl(4);
            if d != 0 {
                v = &v + &BigUint::from(d as u64);
            }
        }
        Ok(v)
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-decimal character.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: "empty literal",
            });
        }
        let mut v = BigUint::zero();
        for b in s.bytes() {
            if !b.is_ascii_digit() {
                return Err(ParseBigUintError {
                    kind: "non-decimal digit",
                });
            }
            v = v.mul_small(10);
            v = &v + &BigUint::from((b - b'0') as u64);
        }
        Ok(v)
    }

    /// Lowercase hexadecimal representation (zero → `"0"`).
    pub fn to_hex_str(&self) -> String {
        format!("{self:x}")
    }

    /// Decimal representation.
    pub fn to_dec_str(&self) -> String {
        format!("{self}")
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for BigUint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.limbs.hash(state);
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self:x})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::UpperHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:x}").to_uppercase())
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::with_capacity(self.bits());
        for i in (0..self.bits()).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.write_str(&s)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut rest = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.div_rem_small(CHUNK);
            chunks.push(r);
            rest = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&format!("{chunk}"));
            } else {
                s.push_str(&format!("{chunk:019}"));
            }
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized_and_even() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bits(), 0);
        assert_eq!(z.to_bytes_be(), Vec::<u8>::new());
        assert_eq!(format!("{z}"), "0");
        assert_eq!(format!("{z:x}"), "0");
    }

    #[test]
    fn from_limbs_normalizes() {
        let v = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limbs(), &[5]);
        assert_eq!(v, BigUint::from(5u64));
    }

    #[test]
    fn bit_access_round_trips() {
        let mut v = BigUint::zero();
        v.set_bit(0, true);
        v.set_bit(65, true);
        assert!(v.bit(0) && v.bit(65) && !v.bit(64));
        assert_eq!(v.bits(), 66);
        v.set_bit(65, false);
        assert_eq!(v, BigUint::one());
    }

    #[test]
    fn bits_le_round_trip() {
        let v = BigUint::from(0b1011_0110u64);
        let bits = v.to_bits_le(8);
        assert_eq!(BigUint::from_bits_le(&bits), v);
        // Truncation keeps only the low bits.
        let low = BigUint::from_bits_le(&v.to_bits_le(4));
        assert_eq!(low, BigUint::from(0b0110u64));
    }

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from(0x0102_0304_0506_0708u64);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        // Leading zero bytes are accepted on input, stripped on output.
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1]), BigUint::one());
    }

    #[test]
    fn hex_parse_and_format() {
        let v = BigUint::from_hex_str("DeadBeef").unwrap();
        assert_eq!(v, BigUint::from(0xdeadbeefu64));
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert_eq!(format!("{v:X}"), "DEADBEEF");
        assert!(BigUint::from_hex_str("xyz").is_err());
        assert!(BigUint::from_hex_str("").is_err());
        // Whitespace tolerated for multi-line constants.
        let w = BigUint::from_hex_str("dead\n beef").unwrap();
        assert_eq!(w, v);
    }

    #[test]
    fn dec_parse_and_format() {
        let v = BigUint::from_dec_str("340282366920938463463374607431768211456").unwrap();
        assert_eq!(v, BigUint::power_of_two(128));
        assert_eq!(format!("{v}"), "340282366920938463463374607431768211456");
        assert!(BigUint::from_dec_str("12a").is_err());
    }

    #[test]
    fn ordering_ignores_limb_content_when_lengths_differ() {
        let small = BigUint::from(u64::MAX);
        let big = BigUint::power_of_two(64);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big.clone()), Ordering::Equal);
    }

    #[test]
    fn u128_round_trip() {
        let v = BigUint::from(u128::MAX);
        assert_eq!(v.to_u128(), Some(u128::MAX));
        assert_eq!(v.to_u64(), None);
        assert_eq!(BigUint::from(7u64).to_u64(), Some(7));
    }

    #[test]
    fn power_of_two_bit_position() {
        for e in [0usize, 1, 63, 64, 65, 127, 1000] {
            let v = BigUint::power_of_two(e);
            assert_eq!(v.bits(), e + 1);
            assert!(v.bit(e));
        }
    }

    #[test]
    fn binary_format() {
        assert_eq!(format!("{:b}", BigUint::from(10u64)), "1010");
        assert_eq!(format!("{:b}", BigUint::zero()), "0");
    }
}
