//! A prime-field element type [`Fp`] with a shared field context [`FpCtx`].
//!
//! Used by the secure dot-product protocol (all protocol algebra happens in
//! `Z_p`) and by the Shamir/BGW secret-sharing baseline.

use crate::modular::mod_inverse;
use crate::montgomery::Montgomery;
use crate::random::random_below;
use crate::uint::BigUint;
use rand::Rng;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// Shared context for a prime field `Z_p`.
#[derive(Debug)]
pub struct FpCtx {
    p: BigUint,
    mont: Montgomery,
}

impl FpCtx {
    /// Creates a field context for the odd prime `p`.
    ///
    /// Primality is the caller's responsibility (contexts are typically
    /// built from fixed, vetted constants); only oddness is checked.
    ///
    /// # Panics
    ///
    /// Panics if `p` is even or `p < 3`.
    pub fn new(p: BigUint) -> Arc<Self> {
        assert!(
            p.is_odd() && p > BigUint::from(2u64),
            "field modulus must be an odd prime"
        );
        let mont = Montgomery::new(p.clone());
        Arc::new(FpCtx { p, mont })
    }

    /// The field modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// Number of bits of the modulus.
    pub fn bits(&self) -> usize {
        self.p.bits()
    }

    /// The additive identity.
    pub fn zero(self: &Arc<Self>) -> Fp {
        Fp {
            ctx: self.clone(),
            v: BigUint::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one(self: &Arc<Self>) -> Fp {
        Fp {
            ctx: self.clone(),
            v: BigUint::one(),
        }
    }

    /// Embeds an unsigned integer, reducing mod `p`.
    pub fn element(self: &Arc<Self>, v: BigUint) -> Fp {
        Fp {
            ctx: self.clone(),
            v: &v % &self.p,
        }
    }

    /// Embeds a `u64`.
    pub fn from_u64(self: &Arc<Self>, v: u64) -> Fp {
        self.element(BigUint::from(v))
    }

    /// Embeds a signed `i128` using the natural embedding of negatives as
    /// `p - |v|` (centered representatives).
    pub fn from_i128(self: &Arc<Self>, v: i128) -> Fp {
        if v >= 0 {
            self.element(BigUint::from(v as u128))
        } else {
            -self.element(BigUint::from(v.unsigned_abs()))
        }
    }

    /// A uniformly random field element.
    pub fn random<R: Rng + ?Sized>(self: &Arc<Self>, rng: &mut R) -> Fp {
        Fp {
            ctx: self.clone(),
            v: random_below(rng, &self.p),
        }
    }

    /// A uniformly random *nonzero* field element.
    pub fn random_nonzero<R: Rng + ?Sized>(self: &Arc<Self>, rng: &mut R) -> Fp {
        loop {
            let v = self.random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

/// An element of a prime field `Z_p`.
///
/// Elements carry an `Arc` to their field context; mixing elements of
/// different fields panics (it is always a logic error).
///
/// # Example
///
/// ```
/// use ppgr_bigint::{BigUint, FpCtx};
///
/// let f = FpCtx::new(BigUint::from(1_000_003u64));
/// let a = f.from_u64(7);
/// let b = a.inv().expect("nonzero");
/// assert_eq!(&a * &b, f.one());
/// ```
#[derive(Clone)]
pub struct Fp {
    ctx: Arc<FpCtx>,
    v: BigUint,
}

impl Fp {
    /// The canonical representative in `[0, p)`.
    pub fn value(&self) -> &BigUint {
        &self.v
    }

    /// The field context.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        &self.ctx
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.v.is_zero()
    }

    /// Constant-time equality on the canonical representatives (see
    /// [`crate::ct`] for what is and is not promised). Both elements are
    /// expected to share a field; the context is not compared.
    pub fn ct_eq(&self, other: &Fp) -> bool {
        crate::ct::ct_eq_limbs(self.v.limbs(), other.v.limbs())
    }

    /// Best-effort scrub: zeroes the value's limbs, leaving the element
    /// equal to `0`. Used by [`crate::Secret`]'s drop path.
    pub fn wipe_value(&mut self) {
        self.v.wipe_limbs();
    }

    /// Interprets the element as a centered signed integer in
    /// `(-p/2, p/2]`, returning `None` if it does not fit in `i128`.
    ///
    /// This inverts [`FpCtx::from_i128`] for values of small magnitude and
    /// is how masked gains are read back out of the dot-product protocol.
    pub fn to_i128_centered(&self) -> Option<i128> {
        let half = self.ctx.p.shr(1);
        if self.v <= half {
            self.v.to_u128().and_then(|u| i128::try_from(u).ok())
        } else {
            let mag = &self.ctx.p - &self.v;
            mag.to_u128()
                .and_then(|u| i128::try_from(u).ok())
                .map(|m| -m)
        }
    }

    /// Multiplicative inverse, or `None` for zero.
    pub fn inv(&self) -> Option<Fp> {
        mod_inverse(&self.v, &self.ctx.p).map(|v| Fp {
            ctx: self.ctx.clone(),
            v,
        })
    }

    /// Exponentiation by an unsigned integer.
    pub fn pow(&self, e: &BigUint) -> Fp {
        Fp {
            ctx: self.ctx.clone(),
            v: self.ctx.mont.pow(&self.v, e),
        }
    }

    fn check_same_field(&self, other: &Fp) {
        assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx) || self.ctx.p == other.ctx.p,
            "mixed elements of different fields"
        );
    }
}

impl PartialEq for Fp {
    fn eq(&self, other: &Self) -> bool {
        self.ctx.p == other.ctx.p && self.v == other.v
    }
}

impl Eq for Fp {}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp(0x{:x} mod {} bits)", self.v, self.ctx.bits())
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.v)
    }
}

impl Add for &Fp {
    type Output = Fp;
    fn add(self, rhs: &Fp) -> Fp {
        self.check_same_field(rhs);
        let mut v = &self.v + &rhs.v;
        if v >= self.ctx.p {
            v = &v - &self.ctx.p;
        }
        Fp {
            ctx: self.ctx.clone(),
            v,
        }
    }
}

impl Sub for &Fp {
    type Output = Fp;
    fn sub(self, rhs: &Fp) -> Fp {
        self.check_same_field(rhs);
        let v = if self.v >= rhs.v {
            &self.v - &rhs.v
        } else {
            &(&self.v + &self.ctx.p) - &rhs.v
        };
        Fp {
            ctx: self.ctx.clone(),
            v,
        }
    }
}

impl Mul for &Fp {
    type Output = Fp;
    fn mul(self, rhs: &Fp) -> Fp {
        self.check_same_field(rhs);
        Fp {
            ctx: self.ctx.clone(),
            v: self.ctx.mont.mul(&self.v, &rhs.v),
        }
    }
}

impl Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        if self.v.is_zero() {
            self
        } else {
            let v = &self.ctx.p - &self.v;
            Fp { ctx: self.ctx, v }
        }
    }
}

impl Neg for &Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        -self.clone()
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Fp {
            type Output = Fp;
            fn $method(self, rhs: Fp) -> Fp {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Fp> for Fp {
            type Output = Fp;
            fn $method(self, rhs: &Fp) -> Fp {
                (&self).$method(rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field() -> Arc<FpCtx> {
        FpCtx::new(BigUint::from(1_000_003u64))
    }

    #[test]
    fn ring_axioms_spot_check() {
        let f = field();
        let a = f.from_u64(999_999);
        let b = f.from_u64(12345);
        let c = f.from_u64(678_901);
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        assert_eq!(&a - &a, f.zero());
        assert_eq!(&a + &(-a.clone()), f.zero());
    }

    #[test]
    fn sub_wraps_below_zero() {
        let f = field();
        let a = f.from_u64(3);
        let b = f.from_u64(5);
        assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn inverse_and_division() {
        let f = field();
        let a = f.from_u64(424_242);
        assert_eq!(&a * &a.inv().unwrap(), f.one());
        assert!(f.zero().inv().is_none());
    }

    #[test]
    fn signed_embedding_round_trips() {
        let f = field();
        for v in [-499_000i128, -1, 0, 1, 499_000] {
            assert_eq!(f.from_i128(v).to_i128_centered(), Some(v));
        }
        // Arithmetic on embedded signed values matches integer arithmetic.
        let x = f.from_i128(-1234);
        let y = f.from_i128(999);
        assert_eq!((&x * &y).to_i128_centered(), Some(-1234 * 999 % 1_000_003));
    }

    #[test]
    fn fermat_via_pow() {
        let f = field();
        let a = f.from_u64(777);
        let e = f.modulus().checked_sub(&BigUint::one()).unwrap();
        assert_eq!(a.pow(&e), f.one());
    }

    #[test]
    fn random_elements_in_range() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = f.random(&mut rng);
            assert!(x.value() < f.modulus());
        }
        assert!(!f.random_nonzero(&mut rng).is_zero());
    }

    #[test]
    #[should_panic(expected = "different fields")]
    fn mixing_fields_panics() {
        let f1 = field();
        let f2 = FpCtx::new(BigUint::from(97u64));
        let _ = &f1.one() + &f2.one();
    }
}
