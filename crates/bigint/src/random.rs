//! Uniform random [`BigUint`] generation, generic over any [`rand::Rng`].

use crate::uint::BigUint;
use rand::Rng;

/// A uniformly random value with exactly `bits` random bits (may have
/// leading zero bits, i.e. the result is uniform in `[0, 2^bits)`).
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let extra = limbs * 64 - bits;
    if extra > 0 {
        let last = v.last_mut().expect("at least one limb");
        *last &= u64::MAX >> extra;
    }
    BigUint::from_limbs(v)
}

/// A uniformly random value of exactly `bits` significant bits
/// (top bit forced to one). `bits` must be at least 1.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn random_nbit<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 1, "need at least one bit");
    let mut v = random_bits(rng, bits);
    v.set_bit(bits - 1, true);
    v
}

/// A uniformly random value in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bits();
    loop {
        let candidate = random_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1usize, 7, 64, 65, 257] {
            for _ in 0..20 {
                let v = random_bits(&mut rng, bits);
                assert!(v.bits() <= bits);
            }
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_nbit_exact_width() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [1usize, 8, 64, 100] {
            for _ in 0..20 {
                assert_eq!(random_nbit(&mut rng, bits).bits(), bits);
            }
        }
    }

    #[test]
    fn random_below_is_below_and_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from(10u64);
        let mut seen = [false; 10];
        for _ in 0..400 {
            let v = random_below(&mut rng, &bound);
            assert!(v < bound);
            seen[v.to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_bits(&mut StdRng::seed_from_u64(42), 256);
        let b = random_bits(&mut StdRng::seed_from_u64(42), 256);
        assert_eq!(a, b);
    }
}
