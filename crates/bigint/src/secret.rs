//! `Secret<T>`: a wrapper for secret-bearing values with a redacting
//! `Debug` impl and a best-effort wipe on drop.
//!
//! The workspace forbids `unsafe`, so this cannot promise the compiler
//! will not have copied the value elsewhere (moves, reallocation, spills
//! to registers/stack are all out of our hands). What it does provide:
//!
//! * `{:?}` on a `Secret<T>` prints `Secret(<redacted>)` — composing with
//!   the derive on any struct that embeds one, so secrets cannot leak
//!   through logging by accident;
//! * on drop, the inner value is overwritten via [`Wipe`] before its own
//!   destructor runs, clearing the primary heap allocation (limb vectors,
//!   byte buffers) in the common case;
//! * access is explicit: call sites must write `.expose()`, which makes
//!   secret reads grep-able and keeps them visible in review.
//!
//! There is deliberately no `into_inner`: once a value is a `Secret` it
//! stays one, and consumers borrow what they need.

use crate::uint::BigUint;

/// Best-effort overwrite of a value with zeros / empty state.
///
/// Implementations must not allocate and must leave the value in a valid
/// (if meaningless) state, since its own `Drop` still runs afterwards.
pub trait Wipe {
    /// Overwrite `self` in place.
    fn wipe(&mut self);
}

impl Wipe for u64 {
    fn wipe(&mut self) {
        *self = 0;
    }
}

impl Wipe for u32 {
    fn wipe(&mut self) {
        *self = 0;
    }
}

impl Wipe for Vec<u64> {
    fn wipe(&mut self) {
        for limb in self.iter_mut() {
            *limb = 0;
        }
        self.clear();
    }
}

impl Wipe for Vec<u8> {
    fn wipe(&mut self) {
        for byte in self.iter_mut() {
            *byte = 0;
        }
        self.clear();
    }
}

impl Wipe for BigUint {
    fn wipe(&mut self) {
        self.wipe_limbs();
    }
}

impl Wipe for crate::Fp {
    fn wipe(&mut self) {
        self.wipe_value();
    }
}

impl<T: Wipe> Wipe for Option<T> {
    fn wipe(&mut self) {
        if let Some(inner) = self.as_mut() {
            inner.wipe();
        }
        *self = None;
    }
}

/// A secret-bearing value: redacted `Debug`, wiped on drop, exposed only
/// through explicit accessors. See the module docs for the exact (and
/// deliberately modest) guarantees.
pub struct Secret<T: Wipe>(T);

impl<T: Wipe> Secret<T> {
    /// Wrap a value. The caller should treat the original binding as moved
    /// (it is) and not keep copies around.
    pub fn new(value: T) -> Self {
        Secret(value)
    }

    /// Borrow the secret. Named so that secret reads stand out at call
    /// sites and in `grep` output.
    pub fn expose(&self) -> &T {
        &self.0
    }

    /// Mutably borrow the secret (e.g. to rerandomize in place).
    pub fn expose_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: Wipe> Drop for Secret<T> {
    fn drop(&mut self) {
        self.0.wipe();
    }
}

impl<T: Wipe + Clone> Clone for Secret<T> {
    fn clone(&self) -> Self {
        Secret(self.0.clone())
    }
}

impl<T: Wipe> core::fmt::Debug for Secret<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Secret(<redacted>)")
    }
}

impl<T: Wipe> From<T> for Secret<T> {
    fn from(value: T) -> Self {
        Secret::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_is_redacted() {
        let s = Secret::new(0xdead_beef_u64);
        let shown = format!("{s:?}");
        assert_eq!(shown, "Secret(<redacted>)");
        assert!(!shown.contains("dead"));
    }

    #[test]
    fn expose_roundtrips() {
        let mut s = Secret::new(vec![1u64, 2, 3]);
        assert_eq!(s.expose(), &vec![1, 2, 3]);
        s.expose_mut().push(4);
        assert_eq!(s.expose().len(), 4);
    }

    #[test]
    fn option_wipe_clears() {
        let mut v: Option<Vec<u8>> = Some(vec![9, 9, 9]);
        v.wipe();
        assert!(v.is_none());
    }

    #[test]
    fn drop_wipes_before_inner_drop() {
        use std::cell::Cell;
        use std::rc::Rc;

        /// Records that `wipe` ran, so the test can observe the drop path.
        #[derive(Clone)]
        struct Probe {
            wiped: Rc<Cell<bool>>,
            payload: u64,
        }
        impl Wipe for Probe {
            fn wipe(&mut self) {
                self.payload = 0;
                self.wiped.set(true);
            }
        }

        let wiped = Rc::new(Cell::new(false));
        {
            let s = Secret::new(Probe {
                wiped: Rc::clone(&wiped),
                payload: 0xfeed,
            });
            assert_eq!(s.expose().payload, 0xfeed);
            assert!(!wiped.get(), "wipe must not run while the Secret lives");
        }
        assert!(wiped.get(), "Secret::drop must call Wipe::wipe");
    }

    #[test]
    fn wipe_zeroes_biguint_limbs() {
        let mut n = BigUint::from_limbs(vec![0xdead, 0xbeef, 0x1234]);
        n.wipe();
        assert!(n.is_zero());
        assert!(n.limbs().is_empty());
    }
}
