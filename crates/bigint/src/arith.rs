//! Core arithmetic on [`BigUint`]: addition, subtraction, multiplication
//! (schoolbook + Karatsuba), shifting, and Knuth Algorithm D division.

use crate::uint::BigUint;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Rem, Sub};

/// Limb width in bits.
const LIMB_BITS: usize = 64;
/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

#[inline]
fn adc(a: u64, b: u64, carry: &mut u64) -> u64 {
    let t = a as u128 + b as u128 + *carry as u128;
    *carry = (t >> 64) as u64;
    t as u64
}

#[inline]
fn sbb(a: u64, b: u64, borrow: &mut u64) -> u64 {
    let t = (a as u128).wrapping_sub(b as u128 + *borrow as u128);
    *borrow = ((t >> 64) as u64) & 1;
    t as u64
}

/// Adds `b` into `a` (slices of equal scope), returning the final carry.
pub(crate) fn add_assign_limbs(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        *ai = adc(*ai, bi, &mut carry);
    }
    if carry != 0 {
        for ai in a.iter_mut().skip(b.len()) {
            *ai = adc(*ai, 0, &mut carry);
            if carry == 0 {
                break;
            }
        }
        if carry != 0 {
            a.push(carry);
        }
    }
}

/// Subtracts `b` from `a` in place. Panics if `b > a` (internal use only).
pub(crate) fn sub_assign_limbs(a: &mut Vec<u64>, b: &[u64]) {
    debug_assert!(a.len() >= b.len());
    let mut borrow = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        *ai = sbb(*ai, bi, &mut borrow);
    }
    if borrow != 0 {
        for ai in a.iter_mut().skip(b.len()) {
            *ai = sbb(*ai, 0, &mut borrow);
            if borrow == 0 {
                break;
            }
        }
    }
    assert_eq!(borrow, 0, "BigUint subtraction underflow");
    while a.last() == Some(&0) {
        a.pop();
    }
}

/// Schoolbook product into a fresh limb vector.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba product; recurses until operands fall below the threshold.
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);

    let mut a01 = a0.to_vec();
    add_assign_limbs(&mut a01, a1);
    let mut b01 = b0.to_vec();
    add_assign_limbs(&mut b01, b1);
    let mut z1 = mul_karatsuba(&a01, &b01);
    // z1 = (a0+a1)(b0+b1) - z0 - z2
    let mut z0n = z0.clone();
    while z0n.last() == Some(&0) {
        z0n.pop();
    }
    let mut z2n = z2.clone();
    while z2n.last() == Some(&0) {
        z2n.pop();
    }
    sub_assign_limbs(&mut z1, &z0n);
    sub_assign_limbs(&mut z1, &z2n);

    let mut out = vec![0u64; a.len() + b.len()];
    // out += z0
    overlay_add(&mut out, &z0, 0);
    overlay_add(&mut out, &z1, half);
    overlay_add(&mut out, &z2, 2 * half);
    out
}

/// Adds `src` into `dst` starting at limb offset `offset`.
fn overlay_add(dst: &mut [u64], src: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < src.len() {
        dst[offset + i] = adc(dst[offset + i], src[i], &mut carry);
        i += 1;
    }
    while carry != 0 {
        dst[offset + i] = adc(dst[offset + i], 0, &mut carry);
        i += 1;
    }
}

impl BigUint {
    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut v = self.clone();
            if bits == 0 {
                return v;
            }
            v.limbs = Vec::new();
            return v;
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push(l << bit_shift | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in limbs.iter_mut().rev() {
                let next_carry = *l << (LIMB_BITS - bit_shift);
                *l = *l >> bit_shift | carry;
                carry = next_carry;
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Multiplies by a single limb.
    pub fn mul_small(&self, k: u64) -> BigUint {
        if k == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = l as u128 * k as u128 + carry;
            limbs.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            limbs.push(carry as u64);
        }
        BigUint::from_limbs(limbs)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn div_rem_small(&self, k: u64) -> (BigUint, u64) {
        assert_ne!(k, 0, "division by zero");
        let mut rem = 0u128;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 64 | self.limbs[i] as u128;
            q[i] = (cur / k as u128) as u64;
            rem = cur % k as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Divides, returning `(quotient, remainder)` (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_small(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_lo = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let num = (un[j + n] as u128) << 64 | un[j + n - 1] as u128;
            let mut qhat = num / v_hi as u128;
            let mut rhat = num % v_hi as u128;
            while qhat >> 64 != 0 || qhat * v_lo as u128 > (rhat << 64 | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_hi as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= qhat * vn
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q̂ was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    un[j + i] = adc(un[j + i], vn[i], &mut carry);
                }
                un[j + n] = un[j + n].wrapping_add(carry);
            }
            q[j] = qhat as u64;
        }

        let rem = BigUint::from_limbs(un[..n].to_vec()).shr(shift);
        (BigUint::from_limbs(q), rem)
    }

    /// Raises to an integer power (plain, non-modular).
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a.shr(a_tz);
        b = b.shr(b_tz);
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return a.shl(common);
            }
            b = b.shr(b.trailing_zeros());
        }
    }

    /// Number of trailing zero bits (`0` for the value zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Checked subtraction: `None` when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if other > self {
            None
        } else {
            Some(self - other)
        }
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut limbs = self.limbs.clone();
        add_assign_limbs(&mut limbs, &rhs.limbs);
        BigUint::from_limbs(limbs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics on underflow; use [`BigUint::checked_sub`] when unsure.
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        let mut limbs = self.limbs.clone();
        sub_assign_limbs(&mut limbs, &rhs.limbs);
        BigUint::from_limbs(limbs)
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        &self % rhs
    }
}

impl BitAnd for &BigUint {
    type Output = BigUint;
    fn bitand(self, rhs: &BigUint) -> BigUint {
        let limbs = self
            .limbs
            .iter()
            .zip(rhs.limbs.iter())
            .map(|(a, b)| a & b)
            .collect();
        BigUint::from_limbs(limbs)
    }
}

impl BitOr for &BigUint {
    type Output = BigUint;
    fn bitor(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs.clone();
        for (l, &s) in limbs.iter_mut().zip(short.limbs.iter()) {
            *l |= s;
        }
        BigUint::from_limbs(limbs)
    }
}

impl BitXor for &BigUint {
    type Output = BigUint;
    fn bitxor(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs.clone();
        for (l, &s) in limbs.iter_mut().zip(short.limbs.iter()) {
            *l ^= s;
        }
        BigUint::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> BigUint {
        BigUint::from_dec_str(s).unwrap()
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum, BigUint::power_of_two(128));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::power_of_two(128);
        let b = BigUint::one();
        assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u64);
    }

    #[test]
    fn checked_sub_none_on_underflow() {
        assert!(BigUint::one().checked_sub(&BigUint::from(2u64)).is_none());
        assert_eq!(
            BigUint::from(2u64).checked_sub(&BigUint::one()),
            Some(BigUint::one())
        );
    }

    #[test]
    fn mul_matches_known_values() {
        let a = n("123456789012345678901234567890");
        let b = n("987654321098765432109876543210");
        let expect = n("121932631137021795226185032733622923332237463801111263526900");
        assert_eq!(&a * &b, expect);
        assert_eq!(&a * &BigUint::zero(), BigUint::zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Operands straddle the Karatsuba threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..80u64 {
            x = x.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(i);
            limbs_a.push(x);
            x = x.rotate_left(17) ^ i;
            limbs_b.push(x);
        }
        let a = BigUint::from_limbs(limbs_a.clone());
        let b = BigUint::from_limbs(limbs_b.clone());
        let school = BigUint::from_limbs(super::mul_schoolbook(&limbs_a, &limbs_b));
        assert_eq!(&a * &b, school);
    }

    #[test]
    fn div_rem_matches_reconstruction() {
        let a = n("340282366920938463463374607431768211455123456789");
        let b = n("18446744073709551629");
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_edge_cases() {
        let a = n("999");
        assert_eq!(a.div_rem(&n("1000")), (BigUint::zero(), a.clone()));
        assert_eq!(a.div_rem(&a), (BigUint::one(), BigUint::zero()));
        let (q, r) = a.div_rem(&BigUint::one());
        assert_eq!((q, r), (a.clone(), BigUint::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn div_rem_stress_knuth_d3_case() {
        // Dividend/divisor shapes that exercise the q̂ correction branch.
        let a = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 1]);
        let b = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn shifts_round_trip() {
        let v = n("123456789012345678901234567890");
        for s in [0usize, 1, 63, 64, 65, 130] {
            assert_eq!(v.shl(s).shr(s), v);
        }
        assert_eq!(v.shr(1000), BigUint::zero());
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(BigUint::from(2u64).pow(10), BigUint::from(1024u64));
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
        assert_eq!(BigUint::from(10u64).pow(20), n("100000000000000000000"));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(36u64)),
            BigUint::from(12u64)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from(5u64)),
            BigUint::from(5u64)
        );
        assert_eq!(
            BigUint::from(5u64).gcd(&BigUint::zero()),
            BigUint::from(5u64)
        );
        let a = n("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn bit_ops() {
        let a = BigUint::from(0b1100u64);
        let b = BigUint::from(0b1010u64);
        assert_eq!(&a & &b, BigUint::from(0b1000u64));
        assert_eq!(&a | &b, BigUint::from(0b1110u64));
        assert_eq!(&a ^ &b, BigUint::from(0b0110u64));
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::power_of_two(100).trailing_zeros(), 100);
        assert_eq!(BigUint::from(12u64).trailing_zeros(), 2);
    }
}
