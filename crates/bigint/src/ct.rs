//! Best-effort constant-time limb operations.
//!
//! The secret-hygiene rule enforced by `ppgr-tidy` forbids `==`/`!=` on
//! secret values: short-circuiting equality returns as soon as the first
//! limb differs, so its timing leaks *where* two secrets diverge. The
//! helpers here always walk every limb of both operands and fold the
//! comparison through branch-free mask arithmetic, with
//! [`core::hint::black_box`] applied to the accumulator each iteration to
//! discourage the optimizer from re-introducing an early exit.
//!
//! Honesty note (also in `docs/ANALYSIS.md`): this workspace's big-integer
//! arithmetic is *not* constant-time overall — limb vectors are
//! normalized, so an operand's length already correlates with its
//! magnitude, and multiplication/reduction take value-dependent time.
//! `ct_eq`/`ct_select` remove the cheapest and most exploitable channel
//! (equality short-circuits on attacker-queried comparisons) without
//! claiming more than that; both still pad to the longer operand so equal
//! values of different stored widths compare correctly.

use crate::uint::BigUint;
use core::hint::black_box;

/// Constant-time limb-slice equality: always reads `max(a.len(), b.len())`
/// limb pairs (missing limbs read as zero), regardless of where the first
/// difference sits.
pub fn ct_eq_limbs(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().max(b.len());
    let mut acc: u64 = 0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        acc = black_box(acc | (x ^ y));
    }
    acc == 0
}

/// Branch-free limb select: `choice` picks `a` (true) or `b` (false).
pub fn ct_select_limb(choice: bool, a: u64, b: u64) -> u64 {
    // `choice as u64` is 0 or 1; wrapping negation turns 1 into all-ones.
    let mask = (choice as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Branch-free slice select: returns `a` if `choice`, else `b`, touching
/// every limb of both inputs either way. Shorter inputs read as
/// zero-extended; the output has `max(a.len(), b.len())` limbs.
pub fn ct_select_limbs(choice: bool, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        out.push(black_box(ct_select_limb(choice, x, y)));
    }
    out
}

impl BigUint {
    /// Constant-time equality: reads every limb of both operands before
    /// answering (see the module docs for exactly what is and is not
    /// promised). Agrees with `==` on all inputs.
    pub fn ct_eq(&self, other: &BigUint) -> bool {
        ct_eq_limbs(self.limbs(), other.limbs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_picks_correct_side() {
        assert_eq!(ct_select_limb(true, 7, 9), 7);
        assert_eq!(ct_select_limb(false, 7, 9), 9);
        assert_eq!(ct_select_limbs(true, &[1, 2], &[3]), vec![1, 2]);
        assert_eq!(ct_select_limbs(false, &[1, 2], &[3]), vec![3, 0]);
    }

    #[test]
    fn eq_handles_length_mismatch() {
        assert!(ct_eq_limbs(&[5], &[5, 0, 0]));
        assert!(!ct_eq_limbs(&[5], &[5, 1]));
        assert!(ct_eq_limbs(&[], &[]));
        assert!(!ct_eq_limbs(&[], &[1]));
    }

    /// Deterministic limb generator so the adversarial cases reproduce.
    fn xorshift_limbs(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn eq_agrees_with_derived_eq_on_random_limbs() {
        for seed in 1..50u64 {
            let a = xorshift_limbs(seed, (seed % 7) as usize);
            let b = xorshift_limbs(seed.wrapping_mul(31), (seed % 5) as usize);
            let a_big = BigUint::from_limbs(a.clone());
            let b_big = BigUint::from_limbs(b.clone());
            assert_eq!(a_big.ct_eq(&b_big), a_big == b_big);
            assert!(a_big.ct_eq(&a_big.clone()));
            assert!(ct_eq_limbs(&a, &a));
        }
    }

    #[test]
    fn eq_catches_single_bit_difference_at_every_position() {
        // The adversarial case for a short-circuiting comparison: operands
        // that agree on a long prefix and differ in exactly one bit.
        let base = xorshift_limbs(0xA5A5_A5A5, 6);
        for limb in 0..base.len() {
            for bit in [0u32, 1, 31, 63] {
                let mut flipped = base.clone();
                flipped[limb] ^= 1u64 << bit;
                assert!(!ct_eq_limbs(&base, &flipped), "limb {limb} bit {bit}");
                assert!(!ct_eq_limbs(&flipped, &base), "limb {limb} bit {bit}");
            }
        }
        assert!(ct_eq_limbs(&base, &base.clone()));
    }

    #[test]
    fn select_agrees_with_branching_select_on_random_limbs() {
        for seed in 1..50u64 {
            let a = xorshift_limbs(seed, (seed % 6) as usize);
            let b = xorshift_limbs(seed.wrapping_mul(97), ((seed + 3) % 6) as usize);
            let n = a.len().max(b.len());
            let pad = |v: &[u64]| {
                let mut p = v.to_vec();
                p.resize(n, 0);
                p
            };
            assert_eq!(ct_select_limbs(true, &a, &b), pad(&a));
            assert_eq!(ct_select_limbs(false, &a, &b), pad(&b));
        }
    }

    #[test]
    fn select_handles_extreme_limb_patterns() {
        for &x in &[0u64, 1, u64::MAX, u64::MAX - 1, 1u64 << 63] {
            for &y in &[0u64, 1, u64::MAX, u64::MAX - 1, 1u64 << 63] {
                assert_eq!(ct_select_limb(true, x, y), x);
                assert_eq!(ct_select_limb(false, x, y), y);
            }
        }
    }
}
