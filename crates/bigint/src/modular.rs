//! Free-standing modular arithmetic helpers: inverse, Jacobi symbol,
//! Tonelli–Shanks square roots, and a convenience `modpow`.

use crate::montgomery::Montgomery;
use crate::uint::BigUint;

impl BigUint {
    /// `self^exp mod n`.
    ///
    /// Dispatches to Montgomery exponentiation for odd `n` and to a plain
    /// square-and-multiply with trial division otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn modpow(&self, exp: &BigUint, n: &BigUint) -> BigUint {
        assert!(!n.is_zero(), "modulus must be nonzero");
        if n.is_one() {
            return BigUint::zero();
        }
        if n.is_odd() {
            return Montgomery::new(n.clone()).pow(self, exp);
        }
        let mut acc = BigUint::one();
        let mut base = self % n;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = &(&acc * &base) % n;
            }
            base = &(&base * &base) % n;
        }
        acc
    }

    /// Modular inverse `self^{-1} mod n`, or `None` if `gcd(self, n) != 1`.
    pub fn modinv(&self, n: &BigUint) -> Option<BigUint> {
        mod_inverse(self, n)
    }
}

/// Modular inverse dispatcher: binary extended GCD for odd moduli (the
/// hot path — every elliptic-curve affine conversion lands here), plain
/// extended Euclid otherwise.
///
/// Returns `a^{-1} mod n` when it exists.
pub fn mod_inverse(a: &BigUint, n: &BigUint) -> Option<BigUint> {
    if n.is_zero() || n.is_one() {
        return None;
    }
    if n.is_odd() {
        return mod_inverse_odd(a, n);
    }
    mod_inverse_euclid(a, n)
}

/// Division-free binary extended GCD for odd `n`.
fn mod_inverse_odd(a: &BigUint, n: &BigUint) -> Option<BigUint> {
    debug_assert!(n.is_odd());
    let a = a % n;
    if a.is_zero() {
        return None;
    }
    let mut u = a;
    let mut v = n.clone();
    let mut x1 = BigUint::one();
    let mut x2 = BigUint::zero();
    // Halves x mod n, exploiting n odd: x/2 or (x+n)/2.
    let halve = |x: &BigUint| -> BigUint {
        if x.is_even() {
            x.shr(1)
        } else {
            (x + n).shr(1)
        }
    };
    while !u.is_one() && !v.is_one() {
        while u.is_even() {
            u = u.shr(1);
            x1 = halve(&x1);
        }
        while v.is_even() {
            v = v.shr(1);
            x2 = halve(&x2);
        }
        if u >= v {
            u = &u - &v;
            // x1 = x1 - x2 mod n
            x1 = if x1 >= x2 {
                &x1 - &x2
            } else {
                &(&x1 + n) - &x2
            };
        } else {
            v = &v - &u;
            x2 = if x2 >= x1 {
                &x2 - &x1
            } else {
                &(&x2 + n) - &x1
            };
        }
        // gcd(a, n) > 1: the subtraction chain bottoms out at zero before
        // either side reaches one.
        if u.is_zero() || v.is_zero() {
            return None;
        }
    }
    let inv = if u.is_one() { x1 } else { x2 };
    Some(inv % n)
}

/// Extended Euclid over signed cofactors, tracked as (sign, magnitude).
fn mod_inverse_euclid(a: &BigUint, n: &BigUint) -> Option<BigUint> {
    let mut r0 = n.clone();
    let mut r1 = a % n;
    // Cofactors of `a`: t0, t1 with sign flags (true = negative).
    let mut t0 = (BigUint::zero(), false);
    let mut t1 = (BigUint::one(), false);
    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1);
        // t2 = t0 - q * t1 over signed values.
        let qt1 = &q * &t1.0;
        let t2 = signed_sub(&t0, &(qt1, t1.1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if !r0.is_one() {
        return None;
    }
    let (mag, neg) = t0;
    let mag = &mag % n;
    Some(if neg && !mag.is_zero() { n - &mag } else { mag })
}

/// `(a) - (b)` on sign-magnitude pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with like signs: compare magnitudes.
        (false, false) | (true, true) => {
            if a.0 >= b.0 {
                (&a.0 - &b.0, a.1)
            } else {
                (&b.0 - &a.0, !a.1)
            }
        }
        // (+a) - (-b) = a + b ;  (-a) - (+b) = -(a + b)
        (false, true) => (&a.0 + &b.0, false),
        (true, false) => (&a.0 + &b.0, true),
    }
}

/// Jacobi symbol `(a/n)` for odd `n > 0`; returns `-1`, `0`, or `1`.
///
/// For prime `n` this is the Legendre symbol, i.e. `1` iff `a` is a
/// nonzero quadratic residue mod `n`.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &BigUint, n: &BigUint) -> i32 {
    assert!(n.is_odd() && !n.is_zero(), "Jacobi symbol needs odd n > 0");
    let mut a = a % n;
    let mut n = n.clone();
    let mut sign = 1i32;
    while !a.is_zero() {
        let tz = a.trailing_zeros();
        if tz % 2 == 1 {
            // (2/n) = -1 when n ≡ 3,5 (mod 8)
            let n_mod8 = (n.limbs()[0] & 7) as u8;
            if n_mod8 == 3 || n_mod8 == 5 {
                sign = -sign;
            }
        }
        a = a.shr(tz);
        // Quadratic reciprocity flip when both ≡ 3 (mod 4).
        if (a.limbs()[0] & 3) == 3 && (n.limbs()[0] & 3) == 3 {
            sign = -sign;
        }
        std::mem::swap(&mut a, &mut n);
        a = &a % &n;
    }
    if n.is_one() {
        sign
    } else {
        0
    }
}

/// Tonelli–Shanks square root mod an odd prime `p`.
///
/// Returns `x` with `x² ≡ a (mod p)`, or `None` if `a` is a non-residue.
/// The companion root is `p - x`.
///
/// # Panics
///
/// Panics if `p` is even (primality itself is the caller's responsibility).
pub fn sqrt_mod_prime(a: &BigUint, p: &BigUint) -> Option<BigUint> {
    assert!(p.is_odd(), "sqrt_mod_prime needs an odd prime");
    let a = a % p;
    if a.is_zero() {
        return Some(BigUint::zero());
    }
    if jacobi(&a, p) != 1 {
        return None;
    }
    let one = BigUint::one();
    let p_minus_1 = p.checked_sub(&one).expect("p > 1");

    // Fast path: p ≡ 3 (mod 4) → x = a^((p+1)/4).
    if (p.limbs()[0] & 3) == 3 {
        let e = (p + &one).shr(2);
        return Some(a.modpow(&e, p));
    }

    // General Tonelli–Shanks: p - 1 = q · 2^s with q odd.
    let s = p_minus_1.trailing_zeros();
    let q = p_minus_1.shr(s);

    // Find a quadratic non-residue z.
    let mut z = BigUint::from(2u64);
    while jacobi(&z, p) != -1 {
        z = &z + &one;
    }

    let mont = Montgomery::new(p.clone());
    let mut m = s;
    let mut c = mont.pow(&z, &q);
    let mut t = mont.pow(&a, &q);
    let mut r = mont.pow(&a, &(&q + &one).shr(1));

    while !t.is_one() {
        // Find least i in (0, m) with t^(2^i) = 1.
        let mut i = 0usize;
        let mut t2 = t.clone();
        while !t2.is_one() {
            t2 = mont.sqr(&t2);
            i += 1;
            if i == m {
                return None; // not a residue (defensive; jacobi said otherwise)
            }
        }
        let b = mont.pow(&c, &BigUint::power_of_two(m - i - 1));
        m = i;
        c = mont.sqr(&b);
        t = mont.mul(&t, &c);
        r = mont.mul(&r, &b);
    }
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modinv_round_trip() {
        let n = BigUint::from(1_000_003u64); // prime
        for a in [2u64, 3, 65537, 999_999] {
            let a = BigUint::from(a);
            let inv = mod_inverse(&a, &n).unwrap();
            assert_eq!(&(&a * &inv) % &n, BigUint::one());
        }
    }

    #[test]
    fn modinv_none_when_not_coprime() {
        let n = BigUint::from(100u64);
        assert!(mod_inverse(&BigUint::from(10u64), &n).is_none());
        assert!(mod_inverse(&BigUint::zero(), &n).is_none());
        assert!(mod_inverse(&BigUint::from(3u64), &n).is_some());
    }

    #[test]
    fn modinv_large_prime() {
        let p = BigUint::power_of_two(521)
            .checked_sub(&BigUint::one())
            .unwrap();
        let a = BigUint::from_dec_str("123456789012345678901234567890").unwrap();
        let inv = mod_inverse(&a, &p).unwrap();
        assert_eq!(&(&a * &inv) % &p, BigUint::one());
    }

    #[test]
    fn jacobi_matches_legendre_small() {
        let p = BigUint::from(23u64);
        // Squares mod 23: 1,2,3,4,6,8,9,12,13,16,18
        let residues = [1u64, 2, 3, 4, 6, 8, 9, 12, 13, 16, 18];
        for a in 1u64..23 {
            let expect = if residues.contains(&a) { 1 } else { -1 };
            assert_eq!(jacobi(&BigUint::from(a), &p), expect, "a = {a}");
        }
        assert_eq!(jacobi(&BigUint::zero(), &p), 0);
        assert_eq!(jacobi(&BigUint::from(23u64), &p), 0);
    }

    #[test]
    fn jacobi_composite() {
        // (2/15) = (2/3)(2/5) = (-1)(-1) = 1
        assert_eq!(jacobi(&BigUint::from(2u64), &BigUint::from(15u64)), 1);
        // (3/15) shares a factor → 0
        assert_eq!(jacobi(&BigUint::from(3u64), &BigUint::from(15u64)), 0);
    }

    #[test]
    fn sqrt_mod_p_3_mod_4() {
        let p = BigUint::from(1_000_003u64); // ≡ 3 (mod 4)
        let x = BigUint::from(123_456u64);
        let a = &(&x * &x) % &p;
        let r = sqrt_mod_prime(&a, &p).unwrap();
        assert_eq!(&(&r * &r) % &p, a);
    }

    #[test]
    fn sqrt_mod_p_1_mod_4_tonelli() {
        let p = BigUint::from(1_000_033u64); // ≡ 1 (mod 4), prime
        assert_eq!((p.limbs()[0] & 3), 1);
        for x in [2u64, 77, 500_000, 999_999] {
            let x = BigUint::from(x);
            let a = &(&x * &x) % &p;
            let r = sqrt_mod_prime(&a, &p).unwrap();
            assert_eq!(&(&r * &r) % &p, a, "x = {x:?}");
        }
    }

    #[test]
    fn sqrt_of_nonresidue_is_none() {
        let p = BigUint::from(23u64);
        assert!(sqrt_mod_prime(&BigUint::from(5u64), &p).is_none());
    }

    #[test]
    fn modpow_even_modulus() {
        let n = BigUint::from(100u64);
        assert_eq!(
            BigUint::from(7u64).modpow(&BigUint::from(3u64), &n),
            BigUint::from(43u64)
        );
        assert_eq!(
            BigUint::from(7u64).modpow(&BigUint::zero(), &BigUint::one()),
            BigUint::zero()
        );
    }
}
