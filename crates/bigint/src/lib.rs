//! Arbitrary-precision unsigned integer arithmetic and prime-field types.
//!
//! This crate is the numeric substrate for the `ppgr` workspace. The allowed
//! dependency set for this reproduction contains no big-integer or
//! cryptography crate, so everything is implemented here from scratch:
//!
//! * [`BigUint`] — little-endian `u64`-limb unsigned integers with
//!   schoolbook/Karatsuba multiplication and Knuth Algorithm D division.
//! * [`Montgomery`] — Montgomery-form modular multiplication and windowed
//!   modular exponentiation for odd moduli (the hot path of every ElGamal
//!   operation in the framework).
//! * [`modular`] — free-standing modular helpers: inverse (binary extended
//!   gcd), Jacobi symbol, Tonelli–Shanks square roots.
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation.
//! * [`Fp`] / [`FpCtx`] — a prime-field element type with a shared context,
//!   used by the secure dot-product protocol and the Shamir/BGW baseline.
//!
//! # Example
//!
//! ```
//! use ppgr_bigint::BigUint;
//!
//! let a = BigUint::from(10u64).pow(30);
//! let b = BigUint::from_dec_str("1000000000000000000000000000000").unwrap();
//! assert_eq!(a, b);
//! let m = BigUint::from(1_000_003u64);
//! assert_eq!(a.modpow(&BigUint::from(2u64), &m), (&a * &a) % &m);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod arith;
pub mod ct;
mod fp;
pub mod modular;
mod montgomery;
mod montgomery4;
pub mod prime;
mod random;
pub mod secret;
mod uint;

pub use ct::{ct_eq_limbs, ct_select_limb, ct_select_limbs};
pub use fp::{Fp, FpCtx};
pub use montgomery::{MontElem, Montgomery};
pub use montgomery4::{MontElem4, Montgomery4};
pub use random::{random_below, random_bits, random_nbit};
pub use secret::{Secret, Wipe};
pub use uint::{BigUint, ParseBigUintError};
