//! Montgomery arithmetic specialised to moduli of at most four limbs.
//!
//! The general-purpose [`MontElem`](crate::MontElem) carries a 48-limb
//! buffer (384 bytes) so a single type serves every modulus up to the
//! 3072-bit DL group. For the
//! elliptic-curve fields — three or four limbs — that width is pure
//! overhead: each field operation zeroes and copies 384 bytes to move a
//! 24-to-32-byte value, and a Jacobian point clone moves over a kilobyte.
//! Profiling on the curve kernels showed the memory traffic of those
//! buffers rivalling the multiplications themselves.
//!
//! [`Montgomery4`] is the small-field counterpart: the same CIOS reduction,
//! conditional-subtraction discipline, and windowed exponentiation as
//! [`Montgomery`](crate::Montgomery), but over a 32-byte [`MontElem4`] that
//! is `Copy`. `ppgr-group`'s curve implementation runs entirely on this
//! context; the DL groups keep the wide type.

// The limb kernels walk several same-index arrays (operand, modulus,
// accumulator) while threading a carry/borrow; indexed loops are the
// clearest rendering and clippy's zip/iterator rewrite obscures them.
#![allow(clippy::needless_range_loop)]

use crate::uint::BigUint;

/// Maximum modulus size in limbs for the small context (256-bit fields).
pub const MAX_LIMBS4: usize = 4;

/// An element of a [`Montgomery4`] context, held in Montgomery form
/// (`a·R mod n`).
///
/// 32 bytes and `Copy`, so curve formulas that juggle a dozen field
/// temporaries per point operation pay register/stack moves instead of the
/// wide buffer copies of the general [`MontElem`](crate::MontElem).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MontElem4 {
    limbs: [u64; MAX_LIMBS4],
}

/// The secp160r1 field prime `2^160 − 2^31 − 1`, little-endian limbs.
const P160: [u64; MAX_LIMBS4] = [0xFFFF_FFFF_7FFF_FFFF, 0xFFFF_FFFF_FFFF_FFFF, 0xFFFF_FFFF, 0];

/// Which multiplication kernel a [`Montgomery4`] context runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kernel {
    /// Montgomery CIOS on 1–4 limbs (any odd modulus).
    Cios,
    /// Pseudo-Mersenne reduction for the secp160r1 prime: elements stay in
    /// *plain* residue form (`enter`/`leave` are copies and `R = 1`), and
    /// products fold the high half down via `2^160 ≡ 2^31 + 1 (mod p)` —
    /// additions and shifts instead of a second pass of word multiplies.
    P160,
}

/// Reduces a 320-bit product to a residue below the secp160r1 prime.
#[inline]
fn reduce_p160(t: &[u64; 6]) -> [u64; MAX_LIMBS4] {
    // First fold: X = H·2^160 + L ≡ H·(2^31 + 1) + L, with H < 2^160.
    let h0 = (t[2] >> 32) | (t[3] << 32);
    let h1 = (t[3] >> 32) | (t[4] << 32);
    let h2 = (t[4] >> 32) | (t[5] << 32);
    // H << 31 (four limbs; H < 2^160 so nothing spills past limb 3).
    let hs0 = h0 << 31;
    let hs1 = (h1 << 31) | (h0 >> 33);
    let hs2 = (h2 << 31) | (h1 >> 33);
    let hs3 = h2 >> 33;
    // S = L + H + (H << 31) < 2^160 + 2^160 + 2^191 < 2^192.
    let l = [t[0], t[1], t[2] & 0xFFFF_FFFF, 0];
    let h = [h0, h1, h2, 0];
    let hs = [hs0, hs1, hs2, hs3];
    let mut s = [0u64; MAX_LIMBS4];
    let mut carry = 0u128;
    for i in 0..MAX_LIMBS4 {
        let v = l[i] as u128 + h[i] as u128 + hs[i] as u128 + carry;
        s[i] = v as u64;
        carry = v >> 64;
    }
    // Second fold: S < 2^192 leaves H2 = S >> 160 < 2^32, so the tail
    // H2·(2^31 + 1) < 2^64 folds in as a single-limb add.
    let h2 = s[2] >> 32;
    let add = h2 + (h2 << 31);
    let mut r = [s[0], s[1], s[2] & 0xFFFF_FFFF, 0];
    let (v, c0) = r[0].overflowing_add(add);
    r[0] = v;
    if c0 {
        let (v, c1) = r[1].overflowing_add(1);
        r[1] = v;
        if c1 {
            r[2] += 1; // r2 < 2^32 + 1: cannot overflow
        }
    }
    // R < 2^160 + 2^64 < 2p: at most one subtraction. Subtract p
    // unconditionally and select on the borrow — a data-dependent branch
    // here mispredicts about half the time in every multiplication.
    let (s0, b0) = r[0].overflowing_sub(P160[0]);
    let (s1a, b1a) = r[1].overflowing_sub(P160[1]);
    let (s1, b1b) = s1a.overflowing_sub(b0 as u64);
    let (s2, b2) = r[2].overflowing_sub(P160[2] + (b1a as u64 + b1b as u64));
    // `b2` set means R < p: keep R, else keep the difference.
    let keep = (b2 as u64).wrapping_neg();
    [
        s0 ^ (keep & (s0 ^ r[0])),
        s1 ^ (keep & (s1 ^ r[1])),
        s2 ^ (keep & (s2 ^ r[2])),
        0,
    ]
}

/// Branchless modular addition for secp160r1 residues (three live limbs).
#[inline]
fn add_p160(a: &[u64; MAX_LIMBS4], b: &[u64; MAX_LIMBS4]) -> [u64; MAX_LIMBS4] {
    // Sum < 2p < 2^161, so one subtraction of p restores the range. The top
    // limbs are below 2^32, so their sum plus a carry cannot overflow.
    let (t0, c0) = a[0].overflowing_add(b[0]);
    let (t1a, c1a) = a[1].overflowing_add(b[1]);
    let (t1, c1b) = t1a.overflowing_add(c0 as u64);
    let t2 = a[2] + b[2] + (c1a as u64 + c1b as u64);
    let (s0, b0) = t0.overflowing_sub(P160[0]);
    let (s1a, b1a) = t1.overflowing_sub(P160[1]);
    let (s1, b1b) = s1a.overflowing_sub(b0 as u64);
    let (s2, b2) = t2.overflowing_sub(P160[2] + (b1a as u64 + b1b as u64));
    let keep = (b2 as u64).wrapping_neg();
    [
        s0 ^ (keep & (s0 ^ t0)),
        s1 ^ (keep & (s1 ^ t1)),
        s2 ^ (keep & (s2 ^ t2)),
        0,
    ]
}

/// Branchless modular subtraction for secp160r1 residues.
#[inline]
fn sub_p160(a: &[u64; MAX_LIMBS4], b: &[u64; MAX_LIMBS4]) -> [u64; MAX_LIMBS4] {
    let (t0, b0) = a[0].overflowing_sub(b[0]);
    let (t1a, b1a) = a[1].overflowing_sub(b[1]);
    let (t1, b1b) = t1a.overflowing_sub(b0 as u64);
    let (t2, b2) = a[2].overflowing_sub(b[2] + (b1a as u64 + b1b as u64));
    // On borrow, add the modulus back (masked so the no-borrow path adds 0).
    let mask = (b2 as u64).wrapping_neg();
    let (r0, c0) = t0.overflowing_add(mask & P160[0]);
    let (r1a, c1a) = t1.overflowing_add(mask & P160[1]);
    let (r1, c1b) = r1a.overflowing_add(c0 as u64);
    let r2 = t2
        .wrapping_add(mask & P160[2])
        .wrapping_add(c1a as u64 + c1b as u64);
    [r0, r1, r2, 0]
}

/// Schoolbook 3×3-limb product + pseudo-Mersenne reduction mod secp160r1.
#[inline]
fn mul_p160(a: &[u64; MAX_LIMBS4], b: &[u64; MAX_LIMBS4]) -> [u64; MAX_LIMBS4] {
    let mut t = [0u64; 6];
    for i in 0..3 {
        let ai = a[i] as u128;
        let mut carry = 0u128;
        for j in 0..3 {
            let v = t[i + j] as u128 + ai * b[j] as u128 + carry;
            t[i + j] = v as u64;
            carry = v >> 64;
        }
        t[i + 3] = carry as u64;
    }
    reduce_p160(&t)
}

/// Dedicated squaring mod secp160r1: six word multiplies instead of nine
/// (the three cross products are computed once and doubled by shifting).
#[inline]
fn sqr_p160(a: &[u64; MAX_LIMBS4]) -> [u64; MAX_LIMBS4] {
    // Cross terms a0a1·2^64 + a0a2·2^128 + a1a2·2^192, then doubled.
    let c01 = a[0] as u128 * a[1] as u128;
    let c02 = a[0] as u128 * a[2] as u128;
    let c12 = a[1] as u128 * a[2] as u128;
    let mut t = [0u64; 6];
    t[1] = c01 as u64;
    let mut v = (c01 >> 64) + (c02 as u64 as u128);
    t[2] = v as u64;
    v = (v >> 64) + (c02 >> 64) + (c12 as u64 as u128);
    t[3] = v as u64;
    v = (v >> 64) + (c12 >> 64);
    t[4] = v as u64;
    // Double the cross sum (bounded by 2^320, so the shift cannot spill
    // past limb 5, which is zero so far).
    let mut carry = 0u64;
    for limb in t.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = new_carry;
    }
    // Add the squares at even limb offsets.
    let mut carry = 0u128;
    for (i, sq) in [
        a[0] as u128 * a[0] as u128,
        a[1] as u128 * a[1] as u128,
        a[2] as u128 * a[2] as u128,
    ]
    .into_iter()
    .enumerate()
    {
        let v = t[2 * i] as u128 + (sq as u64 as u128) + carry;
        t[2 * i] = v as u64;
        let v_hi = t[2 * i + 1] as u128 + (sq >> 64) + (v >> 64);
        t[2 * i + 1] = v_hi as u64;
        carry = v_hi >> 64;
    }
    reduce_p160(&t)
}

/// Precomputed context for Montgomery multiplication modulo an odd `n` of
/// at most [`MAX_LIMBS4`] limbs.
///
/// # Example
///
/// ```
/// use ppgr_bigint::{BigUint, Montgomery4};
///
/// let m = Montgomery4::new(BigUint::from(101u64));
/// let a = m.enter(&BigUint::from(7u64));
/// assert_eq!(m.leave(&m.mpow(&a, &BigUint::from(100u64))), BigUint::one());
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery4 {
    n: BigUint,
    /// Modulus limbs, padded into the fixed buffer.
    n_limbs: [u64; MAX_LIMBS4],
    /// Number of significant limbs of `n`.
    limbs: usize,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64·limbs)`; used to enter Montgomery form.
    r2: MontElem4,
    /// `R mod n`, i.e. Montgomery form of `1`.
    r1: MontElem4,
    /// Multiplication kernel (generic CIOS or the secp160r1 fast path).
    kernel: Kernel,
}

impl Montgomery4 {
    /// Builds a context for the odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero, or wider than [`MAX_LIMBS4`] limbs.
    pub fn new(n: BigUint) -> Self {
        assert!(n.is_odd(), "Montgomery reduction requires an odd modulus");
        let limbs = n.limbs().len();
        assert!(limbs <= MAX_LIMBS4, "modulus exceeds MAX_LIMBS4");
        let n0 = n.limbs()[0];
        // Newton iteration for the inverse of n mod 2^64.
        let mut inv = n0; // valid to 3 bits
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        let mut n_limbs = [0u64; MAX_LIMBS4];
        n_limbs[..limbs].copy_from_slice(n.limbs());
        let kernel = if n_limbs == P160 {
            Kernel::P160
        } else {
            Kernel::Cios
        };
        // The P160 kernel works on plain residues, so its "Montgomery form
        // of one" really is one (R = 1) and `r2` is never touched.
        let (r1_big, r2_big) = match kernel {
            Kernel::Cios => (
                BigUint::power_of_two(64 * limbs) % &n,
                BigUint::power_of_two(128 * limbs) % &n,
            ),
            Kernel::P160 => (BigUint::one(), BigUint::one()),
        };
        let to_fixed = |v: &BigUint| {
            let mut out = [0u64; MAX_LIMBS4];
            out[..v.limbs().len()].copy_from_slice(v.limbs());
            MontElem4 { limbs: out }
        };
        Montgomery4 {
            n_limbs,
            limbs,
            n_prime,
            r2: to_fixed(&r2_big),
            r1: to_fixed(&r1_big),
            kernel,
            n,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// CIOS Montgomery multiplication specialised to an `S`-limb modulus.
    #[inline]
    fn mont_mul_s<const S: usize>(
        &self,
        a: &[u64; MAX_LIMBS4],
        b: &[u64; MAX_LIMBS4],
    ) -> [u64; MAX_LIMBS4] {
        let n = &self.n_limbs;
        let mut t = [0u64; S];
        let mut t_hi = 0u64; // t[S]
        for i in 0..S {
            let ai = a[i];
            let mut carry = 0u128;
            for j in 0..S {
                let v = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = v as u64;
                carry = v >> 64;
            }
            let v = t_hi as u128 + carry;
            t_hi = v as u64;
            let t_top = (v >> 64) as u64; // t[S+1]
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry = (t[0] as u128 + m as u128 * n[0] as u128) >> 64;
            for j in 1..S {
                let v = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = t_hi as u128 + carry;
            t[S - 1] = v as u64;
            t_hi = t_top + ((v >> 64) as u64);
        }
        // Conditional subtraction: t may be in [0, 2n).
        let ge = t_hi != 0 || {
            let mut ge = true;
            for i in (0..S).rev() {
                if t[i] != n[i] {
                    ge = t[i] > n[i];
                    break;
                }
            }
            ge
        };
        if ge {
            let mut borrow = 0u64;
            for i in 0..S {
                let v = (t[i] as u128).wrapping_sub(n[i] as u128 + borrow as u128);
                t[i] = v as u64;
                borrow = ((v >> 64) as u64) & 1;
            }
        }
        let mut out = [0u64; MAX_LIMBS4];
        out[..S].copy_from_slice(&t);
        out
    }

    #[inline]
    fn mont_mul(&self, a: &[u64; MAX_LIMBS4], b: &[u64; MAX_LIMBS4]) -> [u64; MAX_LIMBS4] {
        match self.limbs {
            1 => self.mont_mul_s::<1>(a, b),
            2 => self.mont_mul_s::<2>(a, b),
            3 => self.mont_mul_s::<3>(a, b),
            _ => self.mont_mul_s::<4>(a, b),
        }
    }

    /// Enters Montgomery form.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` (callers reduce first; this is the hot path).
    #[inline]
    pub fn enter(&self, a: &BigUint) -> MontElem4 {
        assert!(a < &self.n, "operand must be reduced");
        let mut buf = [0u64; MAX_LIMBS4];
        buf[..a.limbs().len()].copy_from_slice(a.limbs());
        match self.kernel {
            Kernel::Cios => MontElem4 {
                limbs: self.mont_mul(&buf, &self.r2.limbs),
            },
            Kernel::P160 => MontElem4 { limbs: buf },
        }
    }

    /// Leaves Montgomery form.
    #[inline]
    pub fn leave(&self, a: &MontElem4) -> BigUint {
        match self.kernel {
            Kernel::Cios => {
                let mut one = [0u64; MAX_LIMBS4];
                one[0] = 1;
                let out = self.mont_mul(&a.limbs, &one);
                BigUint::from_limbs(out[..self.limbs].to_vec())
            }
            Kernel::P160 => BigUint::from_limbs(a.limbs[..self.limbs].to_vec()),
        }
    }

    /// Montgomery form of `1`.
    #[inline]
    pub fn one_elem(&self) -> MontElem4 {
        self.r1
    }

    /// Montgomery form of `0`.
    #[inline]
    pub fn zero_elem(&self) -> MontElem4 {
        MontElem4 {
            limbs: [0u64; MAX_LIMBS4],
        }
    }

    /// Returns `true` if the element is zero (zero is fixed by the domain map).
    #[inline]
    pub fn is_zero_elem(&self, a: &MontElem4) -> bool {
        a.limbs == [0u64; MAX_LIMBS4]
    }

    /// In-domain multiplication.
    #[inline]
    pub fn mmul(&self, a: &MontElem4, b: &MontElem4) -> MontElem4 {
        MontElem4 {
            limbs: match self.kernel {
                Kernel::Cios => self.mont_mul(&a.limbs, &b.limbs),
                Kernel::P160 => mul_p160(&a.limbs, &b.limbs),
            },
        }
    }

    /// In-domain squaring.
    #[inline]
    pub fn msqr(&self, a: &MontElem4) -> MontElem4 {
        match self.kernel {
            Kernel::Cios => self.mmul(a, a),
            Kernel::P160 => MontElem4 {
                limbs: sqr_p160(&a.limbs),
            },
        }
    }

    /// In-domain addition (Montgomery form is linear, so plain modular add).
    ///
    /// Always runs at the full four-limb width: with operands below `n` the
    /// sum fits the buffer plus a carry bit, and the padded limbs of a
    /// narrower modulus compare/subtract as zeros, so no per-width dispatch
    /// is needed for the linear ops.
    #[inline]
    pub fn madd(&self, a: &MontElem4, b: &MontElem4) -> MontElem4 {
        if self.kernel == Kernel::P160 {
            return MontElem4 {
                limbs: add_p160(&a.limbs, &b.limbs),
            };
        }
        let n = &self.n_limbs;
        let mut t = [0u64; MAX_LIMBS4];
        let mut carry = 0u128;
        for i in 0..MAX_LIMBS4 {
            let v = a.limbs[i] as u128 + b.limbs[i] as u128 + carry;
            t[i] = v as u64;
            carry = v >> 64;
        }
        let ge = carry != 0 || {
            let mut ge = true;
            for i in (0..MAX_LIMBS4).rev() {
                if t[i] != n[i] {
                    ge = t[i] > n[i];
                    break;
                }
            }
            ge
        };
        if ge {
            let mut borrow = 0u64;
            for i in 0..MAX_LIMBS4 {
                let v = (t[i] as u128).wrapping_sub(n[i] as u128 + borrow as u128);
                t[i] = v as u64;
                borrow = ((v >> 64) as u64) & 1;
            }
        }
        MontElem4 { limbs: t }
    }

    /// In-domain subtraction.
    #[inline]
    pub fn msub(&self, a: &MontElem4, b: &MontElem4) -> MontElem4 {
        if self.kernel == Kernel::P160 {
            return MontElem4 {
                limbs: sub_p160(&a.limbs, &b.limbs),
            };
        }
        let mut t = [0u64; MAX_LIMBS4];
        let mut borrow = 0u64;
        for i in 0..MAX_LIMBS4 {
            let v = (a.limbs[i] as u128).wrapping_sub(b.limbs[i] as u128 + borrow as u128);
            t[i] = v as u64;
            borrow = ((v >> 64) as u64) & 1;
        }
        if borrow != 0 {
            // Add the modulus back.
            let mut carry = 0u128;
            for i in 0..MAX_LIMBS4 {
                let v = t[i] as u128 + self.n_limbs[i] as u128 + carry;
                t[i] = v as u64;
                carry = v >> 64;
            }
        }
        MontElem4 { limbs: t }
    }

    /// In-domain doubling.
    #[inline]
    pub fn mdbl(&self, a: &MontElem4) -> MontElem4 {
        self.madd(a, a)
    }

    /// In-domain small-constant multiple (`k` small; repeated doubling).
    pub fn msmall(&self, a: &MontElem4, k: u64) -> MontElem4 {
        // The curve formulas only ever ask for 3, 4, and 8; short add
        // chains skip the generic loop's zero-accumulator bootstrap add.
        match k {
            2 => return self.mdbl(a),
            3 => return self.madd(&self.mdbl(a), a),
            4 => return self.mdbl(&self.mdbl(a)),
            8 => return self.mdbl(&self.mdbl(&self.mdbl(a))),
            _ => {}
        }
        let mut acc = self.zero_elem();
        let mut base = *a;
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = self.madd(&acc, &base);
            }
            k >>= 1;
            if k > 0 {
                base = self.mdbl(&base);
            }
        }
        acc
    }

    /// In-domain windowed exponentiation: `a^exp` staying in Montgomery
    /// form throughout (no per-call domain conversions).
    pub fn mpow(&self, base: &MontElem4, exp: &BigUint) -> MontElem4 {
        if exp.is_zero() {
            return self.one_elem();
        }
        let bits = exp.bits();
        if bits <= 32 {
            // Small exponent: plain square-and-multiply beats building a
            // 16-entry window table.
            let mut acc = *base;
            for i in (0..bits - 1).rev() {
                acc = self.msqr(&acc);
                if exp.bit(i) {
                    acc = self.mmul(&acc, base);
                }
            }
            return acc;
        }
        // Precompute base^0..base^15.
        let mut table = [self.one_elem(); 16];
        table[1] = *base;
        for i in 2..16 {
            table[i] = self.mmul(&table[i - 1], base);
        }
        let mut acc: Option<MontElem4> = None;
        let mut i = bits;
        while i > 0 {
            let take = if i.is_multiple_of(4) { 4 } else { i % 4 };
            let mut window = 0usize;
            for k in 0..take {
                window = window << 1 | exp.bit(i - 1 - k) as usize;
            }
            acc = Some(match acc {
                None => table[window],
                Some(mut a) => {
                    for _ in 0..take {
                        a = self.msqr(&a);
                    }
                    if window != 0 {
                        a = self.mmul(&a, &table[window]);
                    }
                    a
                }
            });
            i -= take;
        }
        acc.expect("nonzero exponent")
    }

    /// In-domain inverse of a nonzero element via Fermat's little theorem
    /// (`a^{n-2}`); the modulus must be prime, which holds for every curve
    /// field the framework inverts under.
    pub fn minv(&self, a: &MontElem4) -> MontElem4 {
        let e = self
            .n
            .checked_sub(&BigUint::from(2u64))
            .expect("modulus is at least 3");
        self.mpow(a, &e)
    }

    /// Batch in-domain inversion by Montgomery's trick: one [`Self::minv`]
    /// plus three multiplications per element instead of one inversion each.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn batch_minv(&self, elems: &[MontElem4]) -> Vec<MontElem4> {
        if elems.is_empty() {
            return Vec::new();
        }
        // prefix[i] = elems[0]·…·elems[i]
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = elems[0];
        assert!(!self.is_zero_elem(&acc), "cannot invert zero");
        prefix.push(acc);
        for e in &elems[1..] {
            assert!(!self.is_zero_elem(e), "cannot invert zero");
            acc = self.mmul(&acc, e);
            prefix.push(acc);
        }
        let mut inv_acc = self.minv(prefix.last().expect("nonempty"));
        let mut out = vec![self.zero_elem(); elems.len()];
        for i in (1..elems.len()).rev() {
            out[i] = self.mmul(&inv_acc, &prefix[i - 1]);
            inv_acc = self.mmul(&inv_acc, &elems[i]);
        }
        out[0] = inv_acc;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montgomery::Montgomery;

    /// The secp160r1 field prime (3 limbs) and the P-256 prime (4 limbs):
    /// the two widths the curve layer actually runs at.
    fn test_moduli() -> Vec<BigUint> {
        vec![
            BigUint::from_hex_str("ffffffffffffffffffffffffffffffff7fffffff").unwrap(),
            BigUint::from_hex_str(
                "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
            )
            .unwrap(),
            BigUint::from(1_000_003u64),
        ]
    }

    #[test]
    fn matches_wide_context_on_ring_ops() {
        for n in test_moduli() {
            let small = Montgomery4::new(n.clone());
            let wide = Montgomery::new(n.clone());
            let a =
                &BigUint::from_hex_str("abcdef0123456789abcdef0123456789abcdef01").unwrap() % &n;
            let b =
                &BigUint::from_hex_str("123456789abcdef0123456789abcdef012345678").unwrap() % &n;
            let (am, bm) = (small.enter(&a), small.enter(&b));
            let (aw, bw) = (wide.enter(&a), wide.enter(&b));
            assert_eq!(
                small.leave(&small.mmul(&am, &bm)),
                wide.leave(&wide.mmul(&aw, &bw))
            );
            assert_eq!(
                small.leave(&small.madd(&am, &bm)),
                wide.leave(&wide.madd(&aw, &bw))
            );
            assert_eq!(
                small.leave(&small.msub(&am, &bm)),
                wide.leave(&wide.msub(&aw, &bw))
            );
            assert_eq!(
                small.leave(&small.msub(&bm, &am)),
                wide.leave(&wide.msub(&bw, &aw))
            );
            assert_eq!(small.leave(&small.msqr(&am)), wide.leave(&wide.msqr(&aw)));
            assert_eq!(small.leave(&small.mdbl(&am)), wide.leave(&wide.mdbl(&aw)));
            assert_eq!(
                small.leave(&small.msmall(&am, 8)),
                wide.leave(&wide.msmall(&aw, 8))
            );
            let e = BigUint::from_hex_str("fedcba9876543210fedcba98").unwrap();
            assert_eq!(
                small.leave(&small.mpow(&am, &e)),
                wide.leave(&wide.mpow(&aw, &e))
            );
            assert_eq!(small.leave(&small.one_elem()), BigUint::one());
            assert!(small.is_zero_elem(&small.zero_elem()));
            assert_eq!(small.leave(&small.enter(&BigUint::zero())), BigUint::zero());
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in test_moduli() {
            let small = Montgomery4::new(n.clone());
            let a = &BigUint::from_hex_str("deadbeefcafebabe0123456789").unwrap() % &n;
            let am = small.enter(&a);
            assert_eq!(
                small.leave(&small.mmul(&am, &small.minv(&am))),
                BigUint::one()
            );
            let elems: Vec<MontElem4> = (1u64..9)
                .map(|k| small.enter(&(&BigUint::from(k * 7 + 1) % &n)))
                .collect();
            let invs = small.batch_minv(&elems);
            for (e, inv) in elems.iter().zip(&invs) {
                assert_eq!(small.leave(&small.mmul(e, inv)), BigUint::one());
            }
        }
    }

    #[test]
    fn mpow_edge_exponents() {
        let n = BigUint::from(1_000_003u64);
        let m = Montgomery4::new(n.clone());
        let a = m.enter(&BigUint::from(5u64));
        assert_eq!(m.leave(&m.mpow(&a, &BigUint::zero())), BigUint::one());
        assert_eq!(m.leave(&m.mpow(&a, &BigUint::one())), BigUint::from(5u64));
        assert_eq!(
            m.leave(&m.mpow(&a, &BigUint::from(13u64))),
            BigUint::from(5u64).modpow(&BigUint::from(13u64), &n)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_LIMBS4")]
    fn wide_modulus_rejected() {
        let _ = Montgomery4::new(&BigUint::power_of_two(300) + &BigUint::one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery4::new(BigUint::from(100u64));
    }
}
