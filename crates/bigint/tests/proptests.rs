//! Property-based tests for `ppgr-bigint` arithmetic invariants.

use ppgr_bigint::{modular, BigUint, Montgomery};
use proptest::prelude::*;

/// Strategy: arbitrary BigUint up to `limbs` limbs.
fn biguint(limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in biguint(6), b in biguint(6)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(5), b in biguint(5), c in biguint(5)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_round_trip(a in biguint(6), b in biguint(6)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in biguint(5), b in biguint(5)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in biguint(4), b in biguint(4), c in biguint(4)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn karatsuba_regime_matches_u128_checks(a in any::<u128>(), b in any::<u64>()) {
        // Cross-check multi-limb against native arithmetic where it fits.
        let big = BigUint::from(a) * BigUint::from(b as u128);
        let lo = (a & ((1u128 << 64) - 1)) as u64;
        let hi = (a >> 64) as u64;
        let expect = BigUint::from(lo as u128 * b as u128)
            + BigUint::from(hi as u128 * b as u128).shl(64);
        prop_assert_eq!(big, expect);
    }

    #[test]
    fn div_rem_invariant(a in biguint(8), b in biguint(4)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_round_trip(a in biguint(5), s in 0usize..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in biguint(4), s in 0usize..100) {
        prop_assert_eq!(a.shl(s), &a * &BigUint::power_of_two(s));
    }

    #[test]
    fn bytes_round_trip(a in biguint(6)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_round_trip(a in biguint(6)) {
        prop_assert_eq!(BigUint::from_hex_str(&a.to_hex_str()).unwrap(), a);
    }

    #[test]
    fn dec_round_trip(a in biguint(4)) {
        prop_assert_eq!(BigUint::from_dec_str(&a.to_dec_str()).unwrap(), a);
    }

    #[test]
    fn gcd_divides_both(a in biguint(3), b in biguint(3)) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn montgomery_mul_matches_plain(a in biguint(4), b in biguint(4), m in biguint(3)) {
        let m = if m.is_even() { &m + &BigUint::one() } else { m };
        prop_assume!(m > BigUint::one());
        let mont = Montgomery::new(m.clone());
        prop_assert_eq!(mont.mul(&a, &b), &(&a * &b) % &m);
    }

    #[test]
    fn modpow_multiplies_exponents(a in biguint(2), e1 in 0u64..50, e2 in 0u64..50, m in biguint(2)) {
        let m = if m.is_even() { &m + &BigUint::one() } else { m };
        prop_assume!(m > BigUint::one());
        // (a^e1)^e2 = a^(e1·e2) mod m
        let lhs = a
            .modpow(&BigUint::from(e1), &m)
            .modpow(&BigUint::from(e2), &m);
        let rhs = a.modpow(&BigUint::from(e1 * e2), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modinv_is_inverse(a in biguint(3)) {
        // 2^127 - 1 is prime, so any nonzero a mod p is invertible.
        let p = BigUint::power_of_two(127).checked_sub(&BigUint::one()).unwrap();
        let a = &a % &p;
        prop_assume!(!a.is_zero());
        let inv = a.modinv(&p).unwrap();
        prop_assert_eq!(&(&a * &inv) % &p, BigUint::one());
    }

    #[test]
    fn jacobi_is_multiplicative(a in biguint(2), b in biguint(2)) {
        let p = BigUint::from(1_000_003u64);
        let ja = modular::jacobi(&a, &p);
        let jb = modular::jacobi(&b, &p);
        let jab = modular::jacobi(&(&a * &b), &p);
        prop_assert_eq!(jab, ja * jb);
    }

    #[test]
    fn sqrt_of_square_is_root(a in biguint(2)) {
        let p = BigUint::from(1_000_033u64); // ≡ 1 (mod 4): exercises full Tonelli–Shanks
        let a = &a % &p;
        let sq = &(&a * &a) % &p;
        let r = modular::sqrt_mod_prime(&sq, &p).unwrap();
        prop_assert!(r == a || &(&r + &a) % &p == BigUint::zero());
    }

    #[test]
    fn centered_i128_embedding(v in any::<i64>()) {
        use ppgr_bigint::FpCtx;
        let f = FpCtx::new(BigUint::power_of_two(127).checked_sub(&BigUint::one()).unwrap());
        prop_assert_eq!(f.from_i128(v as i128).to_i128_centered(), Some(v as i128));
    }
}
