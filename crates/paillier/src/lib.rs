//! The Paillier cryptosystem — the additively homomorphic alternative the
//! paper discusses and rejects (Sec. II).
//!
//! The paper's Related Work weighs partially homomorphic encryption
//! (Paillier [10], used by the comparison protocols of [8, 9]) as the
//! basis for multiparty sorting and concludes it cannot provide identity
//! unlinkability: computing `max{a,b} = (a>b)·(a−b)+b` under encryption
//! needs *ciphertext×ciphertext* multiplication, which an additive scheme
//! lacks, so a comparison result always surfaces at some party.
//!
//! We implement Paillier faithfully anyway, because the reproduction
//! should let a reader *check* that argument: the crate's tests
//! demonstrate what the scheme can do (adding, scaling by plaintext
//! constants) and its API simply has no ciphertext-product operation to
//! call — while the `ppgr-elgamal` exponential scheme supports the
//! zero-test + plaintext-randomization combination the framework actually
//! needs.
//!
//! # Example
//!
//! ```
//! use ppgr_paillier::Keypair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let kp = Keypair::generate(256, &mut rng); // demo size; use ≥ 2048 in anger
//! let a = kp.public().encrypt_u64(20, &mut rng);
//! let b = kp.public().encrypt_u64(22, &mut rng);
//! let sum = kp.public().add(&a, &b);
//! assert_eq!(kp.decrypt_u64(&sum), Some(42));
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

use ppgr_bigint::{modular, prime, random_below, BigUint, Montgomery};
use rand::Rng;

/// A Paillier public key `(n, n²)` with `g = n + 1`.
#[derive(Clone, Debug)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    mont: Montgomery,
}

/// A Paillier ciphertext (an element of `Z*_{n²}`).
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// The raw value.
    pub fn value(&self) -> &BigUint {
        &self.0
    }
}

/// A key pair: public modulus plus the factorization-derived trapdoor.
#[derive(Clone, Debug)]
pub struct Keypair {
    public: PublicKey,
    /// `λ = lcm(p−1, q−1)`.
    lambda: BigUint,
    /// `μ = (L(g^λ mod n²))^{−1} mod n`.
    mu: BigUint,
}

impl PublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Encrypts `m ∈ [0, n)`: `c = (1+n)^m · r^n mod n²`.
    ///
    /// # Panics
    ///
    /// Panics if `m ≥ n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext must be below the modulus");
        // (1+n)^m = 1 + m·n (mod n²) — the binomial shortcut.
        let gm = (&BigUint::one() + &(m * &self.n)) % &self.n_squared;
        let r = loop {
            let candidate = random_below(rng, &self.n);
            if !candidate.is_zero() && candidate.gcd(&self.n).is_one() {
                break candidate;
            }
        };
        let rn = self.mont.pow(&r, &self.n);
        PaillierCiphertext(self.mont.mul(&gm, &rn))
    }

    /// Encrypts a `u64`.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> PaillierCiphertext {
        self.encrypt(&BigUint::from(m), rng)
    }

    /// Homomorphic addition: `E(a)·E(b) = E(a+b mod n)`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(self.mont.mul(&a.0, &b.0))
    }

    /// Plaintext-constant multiplication: `E(a)^k = E(k·a mod n)`.
    pub fn scale(&self, a: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(self.mont.pow(&a.0, k))
    }

    /// Homomorphic negation: `E(−a) = E(a)^{n−1}`.
    pub fn neg(&self, a: &PaillierCiphertext) -> PaillierCiphertext {
        let n_minus_1 = self.n.checked_sub(&BigUint::one()).expect("n > 1");
        self.scale(a, &n_minus_1)
    }

    /// Re-randomization: multiply by a fresh encryption of zero.
    pub fn rerandomize<R: Rng + ?Sized>(
        &self,
        a: &PaillierCiphertext,
        rng: &mut R,
    ) -> PaillierCiphertext {
        let zero = self.encrypt(&BigUint::zero(), rng);
        self.add(a, &zero)
    }
}

impl Keypair {
    /// Generates a key with two fresh `bits/2`-bit primes.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 16, "modulus too small");
        let half = bits / 2;
        let (p, q) = loop {
            let p = prime::random_prime(rng, half);
            let q = prime::random_prime(rng, bits - half);
            if p != q {
                break (p, q);
            }
        };
        let n = &p * &q;
        let n_squared = &n * &n;
        let one = BigUint::one();
        let p1 = p.checked_sub(&one).expect("p > 1");
        let q1 = q.checked_sub(&one).expect("q > 1");
        let gcd = p1.gcd(&q1);
        let lambda = &(&p1 * &q1) / &gcd;

        let mont = Montgomery::new(n_squared.clone());
        // μ = (L((1+n)^λ mod n²))^{−1} mod n, L(u) = (u−1)/n.
        let glambda = {
            // (1+n)^λ mod n² = 1 + λ·n (mod n²)
            (&one + &(&lambda * &n)) % &n_squared
        };
        let l_val = (&glambda - &one).div_rem(&n).0;
        let mu = modular::mod_inverse(&l_val, &n).expect("λ invertible for valid keys");
        Keypair {
            public: PublicKey { n, n_squared, mont },
            lambda,
            mu,
        }
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Decrypts: `m = L(c^λ mod n²)·μ mod n`.
    pub fn decrypt(&self, ct: &PaillierCiphertext) -> BigUint {
        let pk = &self.public;
        let clambda = pk.mont.pow(&ct.0, &self.lambda);
        let l_val = (&clambda - &BigUint::one()).div_rem(&pk.n).0;
        (&l_val * &self.mu) % &pk.n
    }

    /// Decrypts to `u64` if it fits.
    pub fn decrypt_u64(&self, ct: &PaillierCiphertext) -> Option<u64> {
        self.decrypt(ct).to_u64()
    }

    /// Decrypts a centered value in `(−n/2, n/2]` to `i128` if it fits
    /// (for homomorphic subtraction results).
    pub fn decrypt_i128(&self, ct: &PaillierCiphertext) -> Option<i128> {
        let v = self.decrypt(ct);
        let half = self.public.n.shr(1);
        if v <= half {
            v.to_u128().and_then(|u| i128::try_from(u).ok())
        } else {
            let mag = &self.public.n - &v;
            mag.to_u128()
                .and_then(|u| i128::try_from(u).ok())
                .map(|m| -m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kp() -> (Keypair, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        (Keypair::generate(256, &mut rng), rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (kp, mut rng) = kp();
        for m in [0u64, 1, 42, u64::MAX] {
            let ct = kp.public().encrypt_u64(m, &mut rng);
            assert_eq!(kp.decrypt_u64(&ct), Some(m));
        }
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut rng) = kp();
        let a = kp.public().encrypt_u64(1000, &mut rng);
        let b = kp.public().encrypt_u64(2345, &mut rng);
        assert_eq!(kp.decrypt_u64(&kp.public().add(&a, &b)), Some(3345));
    }

    #[test]
    fn scaling_and_negation() {
        let (kp, mut rng) = kp();
        let a = kp.public().encrypt_u64(7, &mut rng);
        let scaled = kp.public().scale(&a, &BigUint::from(6u64));
        assert_eq!(kp.decrypt_u64(&scaled), Some(42));
        // a − b as centered value.
        let b = kp.public().encrypt_u64(10, &mut rng);
        let diff = kp.public().add(&a, &kp.public().neg(&b));
        assert_eq!(kp.decrypt_i128(&diff), Some(-3));
    }

    #[test]
    fn rerandomization_changes_ct_not_plaintext() {
        let (kp, mut rng) = kp();
        let a = kp.public().encrypt_u64(5, &mut rng);
        let b = kp.public().rerandomize(&a, &mut rng);
        assert_ne!(a, b);
        assert_eq!(kp.decrypt_u64(&b), Some(5));
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (kp, mut rng) = kp();
        let a = kp.public().encrypt_u64(5, &mut rng);
        let b = kp.public().encrypt_u64(5, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn the_papers_objection_holds() {
        // max{a,b} = (a>b)(a−b)+b needs E(x)·E(y) → E(x·y). Paillier's
        // group operation on ciphertexts is homomorphic *addition*; there
        // is no ciphertext-product API, and composing the ops we do have
        // cannot produce E(a·b) from E(a), E(b) without the secret key.
        // What we *can* do — and all we can do — is affine arithmetic:
        let (kp, mut rng) = kp();
        let a = kp.public().encrypt_u64(6, &mut rng);
        let b = kp.public().encrypt_u64(9, &mut rng);
        let affine = kp
            .public()
            .add(&kp.public().scale(&a, &BigUint::from(2u64)), &b);
        assert_eq!(kp.decrypt_u64(&affine), Some(21)); // 2a + b, not a·b
    }

    #[test]
    #[should_panic(expected = "below the modulus")]
    fn oversized_plaintext_rejected() {
        let (kp, mut rng) = kp();
        let n = kp.public().modulus().clone();
        let _ = kp.public().encrypt(&n, &mut rng);
    }
}
