//! Consistent-hash routing of session ids onto shards.
//!
//! Each shard contributes `VNODES` virtual points to a 64-bit hash circle;
//! a session id is routed to the first point at or after its own hash
//! (wrapping). Virtual points smooth the load split, and consistency keeps
//! the mapping stable: the same id always lands on the same shard for a
//! given shard count, and growing the ring moves only the sessions whose
//! arcs the new shard's points capture — the rest keep their assignment.

/// Virtual points per shard. 64 keeps the per-shard load share within a
/// few percent of uniform for the shard counts a single host runs.
const VNODES: u64 = 64;

/// FNV-1a with a splitmix64 avalanche finalizer. Routing needs speed and
/// spread, not collision resistance (an adversarial session id can at
/// worst pick its own shard, which it may do honestly anyway) — but it
/// does need *uniform* spread for structured inputs: raw FNV-1a over
/// little-endian integers whose high bytes are mostly zero degenerates
/// into a near-linear lattice that clumps points on the circle. The
/// finalizer diffuses every input bit across all 64 output bits.
fn point_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer (Steele et al.): full avalanche in three rounds.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// An immutable consistent-hash ring over `shards` shards.
#[derive(Clone, Debug)]
pub(crate) struct HashRing {
    /// `(point, shard)` sorted by point; binary-searched per lookup.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    pub(crate) fn new(shards: usize) -> Self {
        debug_assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES as usize);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let mut key = [0u8; 17];
                key[0] = b'S';
                key[1..9].copy_from_slice(&(shard as u64).to_le_bytes());
                key[9..17].copy_from_slice(&vnode.to_le_bytes());
                points.push((point_hash(&key), shard));
            }
        }
        // Ties (astronomically unlikely) resolve to the lower shard id on
        // every lookup, so routing stays total and deterministic.
        points.sort_unstable();
        HashRing { points }
    }

    /// The shard owning `session_id`.
    pub(crate) fn route(&self, session_id: u64) -> usize {
        let hash = point_hash(&session_id.to_le_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        // Wrap past the last point back to the first.
        self.points[idx % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(4);
        for id in 0..1000u64 {
            let shard = ring.route(id);
            assert!(shard < 4);
            assert_eq!(shard, ring.route(id), "same id must route identically");
        }
    }

    #[test]
    fn every_shard_receives_load() {
        let ring = HashRing::new(5);
        let mut counts = [0usize; 5];
        for id in 0..5000u64 {
            counts[ring.route(id)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 500,
                "shard {shard} got {count}/5000 — vnode spread failed"
            );
        }
    }

    #[test]
    fn growing_the_ring_only_moves_captured_sessions() {
        let small = HashRing::new(3);
        let large = HashRing::new(4);
        let mut moved = 0usize;
        for id in 0..4000u64 {
            let before = small.route(id);
            let after = large.route(id);
            if before != after {
                // Consistency: a session that moved must have moved *to*
                // the new shard, never between old shards.
                assert_eq!(after, 3, "session {id} moved {before}→{after}");
                moved += 1;
            }
        }
        // The new shard captures roughly a quarter of the circle.
        assert!(moved > 400 && moved < 2000, "moved {moved}/4000");
    }

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(1);
        for id in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ring.route(id), 0);
        }
    }
}
