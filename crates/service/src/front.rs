//! The front door: admission control, sharded submission, and the
//! scrape-ready metrics surface.

use crate::ring::HashRing;
use ppgr_core::{FrameworkParams, GroupRanking, Outcome, RunError, SortOptions};
use ppgr_group::GroupKind;
use ppgr_net::{CacheCounters, MetricsSnapshot, PhaseBudget};
use ppgr_runtime::{Runtime, RuntimeConfig, SessionHandle};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration for a [`Service`].
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct ServiceConfig {
    /// Worker-group shards (`0` = 1). Each shard is an independent
    /// [`Runtime`] with its own run queue, verify collector, scratch pool
    /// and precompute lanes; sessions are routed to shards by consistent
    /// hash of their session id, so a given id always lands on the same
    /// shard's queues.
    pub shards: usize,
    /// Worker threads per shard (`0` = 1). The sharded default is
    /// deliberately narrow: on one host, `shards × workers_per_shard`
    /// should not exceed the core count.
    pub workers_per_shard: usize,
    /// Bounded in-flight window per shard (`0` = unbounded). Admission
    /// sheds with [`AdmitError::Saturated`] once a shard holds this many
    /// unresolved sessions.
    pub max_in_flight: usize,
    /// Cross-session verify batch window handed to each shard's runtime
    /// ([`RuntimeConfig::verify_batch`]; `0`/`1` = no batching).
    pub verify_batch: usize,
    /// Per-phase allowances driving the admission projection. The default
    /// ([`PhaseBudget::default`]) allows 30 s per phase.
    pub budget: PhaseBudget,
    /// Admission horizon: a session whose *projected* completion — its
    /// [`PhaseBudget::session_total`] multiplied by its queue depth share —
    /// exceeds this is shed with [`AdmitError::ProjectedOverBudget`]
    /// instead of being queued to miss its deadline. `None` disables the
    /// projection check. The projection is clock-free: it reasons over
    /// budgets and queue depths only, never wall-clock timestamps.
    pub horizon: Option<Duration>,
    /// Wall-clock budget per admitted session, enforced by the shard
    /// runtime at step boundaries (`None` = unbounded).
    pub session_budget: Option<Duration>,
    /// Offline precompute configuration for each shard's runtime.
    pub precompute: ppgr_runtime::PrecomputeConfig,
}

impl ServiceConfig {
    fn resolve_shards(&self) -> usize {
        self.shards.max(1)
    }

    fn resolve_workers(&self) -> usize {
        self.workers_per_shard.max(1)
    }
}

/// Why admission control refused a session. Typed so callers can
/// distinguish back-off (`Saturated`) from re-parameterize-or-retry-later
/// (`ProjectedOverBudget`) without string matching.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum AdmitError {
    /// The target shard's bounded in-flight window is full.
    Saturated {
        /// The shard the session hashed to.
        shard: usize,
        /// Unresolved sessions the shard holds.
        in_flight: usize,
        /// The configured window ([`ServiceConfig::max_in_flight`]).
        limit: usize,
    },
    /// The session's projected completion exceeds the admission horizon.
    ProjectedOverBudget {
        /// The shard the session hashed to.
        shard: usize,
        /// Budget-based completion projection at admission time.
        projected: Duration,
        /// The configured ceiling ([`ServiceConfig::horizon`]).
        horizon: Duration,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Saturated {
                shard,
                in_flight,
                limit,
            } => write!(
                f,
                "shard {shard} saturated: {in_flight} sessions in flight (limit {limit})"
            ),
            AdmitError::ProjectedOverBudget {
                shard,
                projected,
                horizon,
            } => write!(
                f,
                "shard {shard} projects completion in {projected:?}, over the {horizon:?} horizon"
            ),
        }
    }
}

impl Error for AdmitError {}

/// Monotonic service counters (relaxed atomics: telemetry, never
/// synchronization).
#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected_saturated: AtomicU64,
    rejected_deadline: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    wire_messages: AtomicU64,
    wire_bytes: AtomicU64,
}

/// One worker-group shard: an independent runtime plus its in-flight count.
struct Shard {
    runtime: Runtime,
    in_flight: Arc<AtomicUsize>,
}

/// A claim on a session admitted through a [`Service`].
#[derive(Debug)]
pub struct ServiceHandle {
    inner: SessionHandle,
    session_id: u64,
    shard: usize,
}

impl ServiceHandle {
    /// Blocks until the session completes and returns its outcome.
    ///
    /// # Errors
    ///
    /// Whatever [`RunError`] the session produced (see
    /// [`SessionHandle::join`]).
    pub fn join(self) -> Result<Outcome, RunError> {
        self.inner.join()
    }

    /// Requests cooperative cancellation (see [`SessionHandle::cancel`]).
    pub fn cancel(&self) {
        self.inner.cancel();
    }

    /// Whether the session has already resolved (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// The session id the request was admitted under.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The shard the session was routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// The ranking-as-a-service front door.
///
/// Accepts a stream of ranking-session requests, routes each by consistent
/// hash of its session id onto one of several worker-group shards, and
/// sheds load it cannot serve within budget ([`AdmitError`]). Admitted
/// sessions flow through the shard's [`Runtime`], which amortizes crypto
/// across concurrent sessions — batched keygen proof verification, shared
/// warm comb caches, pooled hop scratch — while keeping every session's
/// transcript bit-identical to a solo serial run: amortization reorders
/// work, never bytes.
pub struct Service {
    config: ServiceConfig,
    ring: HashRing,
    shards: Vec<Shard>,
    counters: Arc<Counters>,
    /// Group instantiations seen at admission, for the cache section of
    /// [`Service::metrics`] (comb caches are process-wide singletons keyed
    /// by kind).
    kinds: Mutex<Vec<GroupKind>>,
}

impl Service {
    /// Starts a service per `config`: one [`Runtime`] per shard, workers
    /// pinned, verify windows armed.
    pub fn new(config: ServiceConfig) -> Self {
        let shards = config.resolve_shards();
        let shard_pool = (0..shards)
            .map(|_| Shard {
                runtime: Runtime::new(RuntimeConfig {
                    workers: config.resolve_workers(),
                    session_budget: config.session_budget,
                    precompute: config.precompute,
                    verify_batch: config.verify_batch,
                }),
                in_flight: Arc::new(AtomicUsize::new(0)),
            })
            .collect();
        Service {
            ring: HashRing::new(shards),
            shards: shard_pool,
            counters: Arc::new(Counters::default()),
            kinds: Mutex::new(Vec::new()),
            config,
        }
    }

    /// The number of worker-group shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Projects how long a freshly admitted session would take to clear
    /// its shard, from budgets and queue depth alone (clock-free): the
    /// session's own phase-budget total, scaled by how many queue "waves"
    /// of already-admitted sessions (`queued_ahead` of it) must drain
    /// through the shard's workers first. An empty shard projects exactly
    /// one `session_total`.
    fn projected_completion(&self, queued_ahead: usize, participants: usize) -> Duration {
        let workers = self.config.resolve_workers();
        let waves = (queued_ahead / workers).saturating_add(1);
        self.config
            .budget
            .session_total(participants)
            .saturating_mul(u32::try_from(waves).unwrap_or(u32::MAX))
    }

    /// Admits (or sheds) one ranking-session request.
    ///
    /// `session_id` is the caller's stable identifier for the request —
    /// it picks the shard (consistent hash), so retries of the same id
    /// land on the same run queues. The session itself is seeded by
    /// `params` exactly as a solo [`GroupRanking`] run would be.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Saturated`] when the target shard's in-flight window
    /// is full; [`AdmitError::ProjectedOverBudget`] when the budget
    /// projection exceeds the configured horizon. Shed sessions consume no
    /// worker time and leave no state behind.
    pub fn submit(
        &self,
        session_id: u64,
        params: FrameworkParams,
    ) -> Result<ServiceHandle, AdmitError> {
        let shard = self.ring.route(session_id);
        let target = &self.shards[shard];
        // Reserve the in-flight slot optimistically; shed paths release it.
        // The reservation (not a read-then-add) keeps concurrent submitters
        // from both slipping under the window.
        let prior = target.in_flight.fetch_add(1, Ordering::AcqRel);
        if self.config.max_in_flight > 0 && prior >= self.config.max_in_flight {
            target.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.counters
                .rejected_saturated
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::Saturated {
                shard,
                in_flight: prior,
                limit: self.config.max_in_flight,
            });
        }
        if let Some(horizon) = self.config.horizon {
            let projected = self.projected_completion(prior, params.participants());
            if projected > horizon {
                target.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.counters
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                return Err(AdmitError::ProjectedOverBudget {
                    shard,
                    projected,
                    horizon,
                });
            }
        }
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        {
            let mut kinds = self.kinds.lock().expect("kinds mutex");
            if !kinds.contains(&params.group()) {
                kinds.push(params.group());
            }
        }
        let options = SortOptions {
            threads: 1,
            defer_verify: self.config.verify_batch > 1,
            ..SortOptions::default()
        };
        let machine = GroupRanking::new(params)
            .with_random_population()
            .into_machine_with(options)
            .expect("a populated ranking always builds a machine");
        let counters = Arc::clone(&self.counters);
        let in_flight = Arc::clone(&target.in_flight);
        let inner = target.runtime.submit_session_observed(
            machine,
            self.config.session_budget,
            move |result| {
                match result {
                    Ok(outcome) => {
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                        let traffic = outcome.traffic();
                        counters
                            .wire_messages
                            .fetch_add(traffic.messages, Ordering::Relaxed);
                        counters
                            .wire_bytes
                            .fetch_add(traffic.total_bytes, Ordering::Relaxed);
                    }
                    Err(_) => {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                in_flight.fetch_sub(1, Ordering::AcqRel);
            },
        );
        Ok(ServiceHandle {
            inner,
            session_id,
            shard,
        })
    }

    /// A scrape-ready snapshot of the service's counters: admission and
    /// completion totals, per-shard aggregates of the runtimes'
    /// amortization stats, wire totals of completed sessions, and the
    /// process-wide comb-cache counters for every group kind served.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot {
            sessions_admitted: self.counters.admitted.load(Ordering::Relaxed),
            sessions_rejected_saturated: self.counters.rejected_saturated.load(Ordering::Relaxed),
            sessions_rejected_deadline: self.counters.rejected_deadline.load(Ordering::Relaxed),
            sessions_completed: self.counters.completed.load(Ordering::Relaxed),
            sessions_failed: self.counters.failed.load(Ordering::Relaxed),
            sessions_in_flight: self
                .shards
                .iter()
                .map(|s| s.in_flight.load(Ordering::Acquire) as u64)
                .sum(),
            shards: self.shards.len() as u64,
            workers: self.shards.iter().map(|s| s.runtime.workers() as u64).sum(),
            wire_messages: self.counters.wire_messages.load(Ordering::Relaxed),
            wire_bytes: self.counters.wire_bytes.load(Ordering::Relaxed),
            ..MetricsSnapshot::default()
        };
        for shard in &self.shards {
            let stats = shard.runtime.stats();
            snapshot.verify_flushes += stats.verify_flushes;
            snapshot.verify_batched_sessions += stats.verify_batched_sessions;
            snapshot.verify_batched_proofs += stats.verify_batched_proofs;
            snapshot.scratch_reused += stats.scratch_reused;
        }
        let kinds = self.kinds.lock().expect("kinds mutex").clone();
        for kind in kinds {
            let stats = kind.group().comb_cache_stats();
            snapshot.caches.push(CacheCounters {
                label: format!("{kind:?}/comb").to_lowercase(),
                hits: stats.hits,
                misses: stats.misses,
                evictions: stats.evictions,
                entries: stats.entries,
            });
        }
        snapshot
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("shards", &self.shards.len())
            .field("workers_per_shard", &self.config.resolve_workers())
            .field("max_in_flight", &self.config.max_in_flight)
            .field("verify_batch", &self.config.verify_batch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_core::Questionnaire;

    fn small_params(n: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(1)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .expect("valid params")
    }

    #[test]
    fn admitted_sessions_match_solo_runs() {
        let service = Service::new(ServiceConfig {
            shards: 2,
            workers_per_shard: 1,
            verify_batch: 3,
            ..ServiceConfig::default()
        });
        let handles: Vec<ServiceHandle> = (0..4)
            .map(|i| {
                service
                    .submit(i, small_params(3, 7000 + i))
                    .expect("admitted")
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let served = handle.join().expect("session completes");
            let solo = GroupRanking::new(small_params(3, 7000 + i as u64))
                .with_random_population()
                .run()
                .expect("solo run");
            assert_eq!(served.ranks(), solo.ranks());
            assert_eq!(served.traffic(), solo.traffic());
        }
        let m = service.metrics();
        assert_eq!(m.sessions_admitted, 4);
        assert_eq!(m.sessions_completed, 4);
        assert_eq!(m.sessions_failed, 0);
        assert_eq!(m.sessions_in_flight, 0);
        assert_eq!(m.shards, 2);
        assert_eq!(m.workers, 2);
        assert!(m.wire_messages > 0 && m.wire_bytes > 0);
    }

    #[test]
    fn same_session_id_routes_to_the_same_shard() {
        let service = Service::new(ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        });
        let a = service.submit(99, small_params(2, 1)).expect("admitted");
        let b = service.submit(99, small_params(2, 2)).expect("admitted");
        assert_eq!(a.shard(), b.shard());
        assert_eq!(a.session_id(), 99);
        a.join().expect("a");
        b.join().expect("b");
    }

    #[test]
    fn projection_sheds_sessions_over_the_horizon() {
        // A generous per-phase budget against a tiny horizon: every
        // admission projects over it, deterministically (no clock reads).
        let service = Service::new(ServiceConfig {
            budget: PhaseBudget::uniform(Duration::from_secs(1)),
            horizon: Some(Duration::from_millis(1)),
            ..ServiceConfig::default()
        });
        let err = service.submit(5, small_params(3, 50)).expect_err("shed");
        match err {
            AdmitError::ProjectedOverBudget {
                projected, horizon, ..
            } => {
                assert!(projected > horizon);
                // n = 3 ⇒ gain+keygen+encrypt+compare+submit + (n+1) hops
                // = 9 phases of 1 s on an empty shard.
                assert_eq!(projected, Duration::from_secs(9));
            }
            other => panic!("wrong rejection: {other:?}"),
        }
        let m = service.metrics();
        assert_eq!(m.sessions_admitted, 0);
        assert_eq!(m.sessions_rejected_deadline, 1);
        assert_eq!(m.sessions_in_flight, 0, "shed must release its slot");
    }

    #[test]
    fn saturation_sheds_when_the_window_is_full() {
        let service = Service::new(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            max_in_flight: 2,
            ..ServiceConfig::default()
        });
        // Two admitted sessions fill the window long before the single
        // worker can resolve them; the third is shed at the door.
        let a = service.submit(1, small_params(4, 60)).expect("admitted");
        let b = service.submit(2, small_params(4, 61)).expect("admitted");
        let err = service.submit(3, small_params(4, 62)).expect_err("shed");
        assert!(
            matches!(
                err,
                AdmitError::Saturated {
                    shard: 0,
                    in_flight: 2,
                    limit: 2,
                }
            ),
            "wrong rejection: {err:?}"
        );
        a.join().expect("a");
        b.join().expect("b");
        let m = service.metrics();
        assert_eq!(m.sessions_admitted, 2);
        assert_eq!(m.sessions_rejected_saturated, 1);
        assert_eq!(m.sessions_completed, 2);
        assert_eq!(m.sessions_in_flight, 0);
    }

    #[test]
    fn metrics_surface_amortization_and_caches() {
        let service = Service::new(ServiceConfig {
            shards: 1,
            workers_per_shard: 2,
            verify_batch: 2,
            ..ServiceConfig::default()
        });
        let handles: Vec<ServiceHandle> = (0..4)
            .map(|i| {
                service
                    .submit(i, small_params(3, 71 + i))
                    .expect("admitted")
            })
            .collect();
        for handle in handles {
            handle.join().expect("session completes");
        }
        let m = service.metrics();
        assert_eq!(
            m.verify_batched_sessions, 4,
            "every cold deferred session must settle through the collector"
        );
        assert_eq!(m.verify_batched_proofs, 12);
        assert!(m.verify_flushes >= 1);
        assert_eq!(m.caches.len(), 1, "one group kind served ⇒ one cache row");
        assert_eq!(m.caches[0].label, "ecc160/comb");
        assert!(
            m.caches[0].hits + m.caches[0].misses > 0,
            "comb lookups must have been counted"
        );
        // The snapshot serializes under the pinned contract.
        let json = m.to_json();
        for field in MetricsSnapshot::FIELDS {
            assert!(json.contains(&format!("\"{field}\"")));
        }
    }
}
