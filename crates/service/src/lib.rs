//! Ranking-as-a-service front door.
//!
//! [`ppgr_runtime::Runtime`] executes many ranking sessions on one worker
//! pool; this crate puts a *service* in front of it, for the deployment
//! where ranking requests arrive as an open-ended stream rather than a
//! batch someone is willing to wait for:
//!
//! * **Sharded sessions** — requests are routed by consistent hash of
//!   their session id onto independent worker-group shards (each its own
//!   [`Runtime`](ppgr_runtime::Runtime) with its own run queues), so a
//!   given id always lands on the same queues and one pathological group
//!   cannot convoy every core behind it.
//! * **Admission control** — each shard carries a bounded in-flight window
//!   and a clock-free completion projection driven by
//!   [`PhaseBudget`](ppgr_net::PhaseBudget): a request the service cannot
//!   plausibly finish within the configured horizon is shed *at the door*
//!   with a typed [`AdmitError`], consuming no worker time, instead of
//!   being queued to miss its deadline quietly.
//! * **Cross-session crypto amortization** — admitted sessions share the
//!   shard runtime's batched keygen proof verification (many sessions'
//!   Schnorr checks collapse into one aggregate multi-exponentiation, with
//!   per-session blame preserved), the process-wide warm comb caches, the
//!   offline precompute lanes, and recycled hop scratch buffers.
//!
//! The amortization invariant, inherited from the runtime and pinned by
//! the workspace proptests: **batching reorders work, never bytes**. Every
//! admitted session's ranks and wire transcript are bit-identical to a
//! solo serial run with the same parameters — shed sessions simply do not
//! run.
//!
//! [`Service::metrics`] exports a scrape-ready [`MetricsSnapshot`]
//! (stable field names, pinned by test in `ppgr-net`) aggregating
//! admission counters, runtime amortization stats and comb-cache counters.
//!
//! # Example
//!
//! ```
//! use ppgr_core::{FrameworkParams, Questionnaire};
//! use ppgr_group::GroupKind;
//! use ppgr_service::{Service, ServiceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Service::new(ServiceConfig {
//!     shards: 2,
//!     workers_per_shard: 1,
//!     verify_batch: 4,
//!     ..ServiceConfig::default()
//! });
//! let params = FrameworkParams::builder(Questionnaire::synthetic(1, 1))
//!     .participants(3)
//!     .top_k(1)
//!     .attr_bits(4)
//!     .weight_bits(2)
//!     .mask_bits(4)
//!     .group(GroupKind::Ecc160)
//!     .seed(7)
//!     .build()?;
//! let handle = service.submit(42, params).expect("admitted");
//! let outcome = handle.join()?;
//! assert_eq!(outcome.ranks().len(), 3);
//! assert_eq!(service.metrics().sessions_completed, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod front;
mod ring;

pub use front::{AdmitError, Service, ServiceConfig, ServiceHandle};
pub use ppgr_net::MetricsSnapshot;
