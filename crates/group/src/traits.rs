//! The [`Group`] handle and opaque [`Element`] values.

use crate::dl::DlGroup;
use crate::ec::{EcGroup, EcPoint};
use crate::kind::GroupKind;
use crate::scalar::Scalar;
use ppgr_bigint::{random_below, BigUint};
use rand::Rng;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// An element of a [`Group`] (a residue for DL groups, a point for ECC).
///
/// Elements are opaque; combine them with [`Group::op`], [`Group::exp`] etc.
#[derive(Clone, Eq, PartialEq, Hash)]
pub enum Element {
    /// A quadratic residue modulo the safe prime of a [`DlGroup`].
    Dl(BigUint),
    /// A point on the curve of an [`EcGroup`].
    Ec(EcPoint),
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Dl(v) => write!(f, "Element::Dl(0x{v:x})"),
            Element::Ec(p) => write!(f, "Element::Ec({p:?})"),
        }
    }
}

/// Error returned when decoding a serialized group element fails.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct DecodeElementError {
    pub(crate) reason: &'static str,
}

impl fmt::Display for DecodeElementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid group element encoding: {}", self.reason)
    }
}

impl Error for DecodeElementError {}

/// Error from a fallible group operation.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum GroupError {
    /// An element of the other group family (DL vs. EC) was passed to this
    /// group — e.g. a curve point handed to a safe-prime group. This means
    /// elements from different [`Group`] instances were mixed, which the
    /// protocol layers never do for honestly generated values but can
    /// happen with adversarial wire input.
    FamilyMismatch {
        /// The operation that was attempted (`"op"`, `"exp"`, …).
        operation: &'static str,
    },
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::FamilyMismatch { operation } => {
                write!(f, "element/group family mismatch in `{operation}`")
            }
        }
    }
}

impl Error for GroupError {}

/// A precomputed fixed-base exponentiation table for one [`Element`].
///
/// Built with [`Group::prepare_base`]; pass it to [`Group::exp_prepared`]
/// (or the batch variant) to exponentiate by that base at roughly a quarter
/// of the generic [`Group::exp`] cost. The table build itself costs a few
/// generic exponentiations, so prepare only bases that are reused — in this
/// framework, the joint public key that every encryption and
/// re-randomization exponentiates by.
///
/// Cloning is cheap (`Arc` internally). Tables are also cached inside the
/// group singleton, so repeated `prepare_base` calls for the same base are
/// shared across the process.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    base: Element,
    inner: TableImpl,
}

#[derive(Clone, Debug)]
enum TableImpl {
    Dl(Arc<crate::dl::DlComb>),
    Ec(Arc<crate::ec::EcComb>),
}

/// A hop's `(r, −x·r)` scalar pair with the scalar-only work — the order
/// reduction and the curve family's wNAF recoding — done ahead of time by
/// [`Group::prepare_hop_scalars`]. Feeding these to
/// [`Group::exp_hop_prepared_batch`] makes the online hop a pure
/// variable-base ladder evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopScalars {
    pub(crate) r: Scalar,
    pub(crate) neg_xr: Scalar,
    /// wNAF recodings of `(r, −x·r)` on the elliptic-curve family; an
    /// empty digit vector encodes the zero scalar.
    pub(crate) digits: Option<(Vec<i64>, Vec<i64>)>,
}

impl HopScalars {
    /// The hop randomizer `r` this preparation was built from.
    pub fn randomizer(&self) -> &Scalar {
        &self.r
    }
}

impl FixedBaseTable {
    /// The base this table exponentiates.
    pub fn base(&self) -> &Element {
        &self.base
    }
}

/// A handle to a prime-order group in which DDH is assumed hard.
///
/// Cloning is cheap (`Arc` internally). All protocol crates take a `&Group`
/// and treat [`Element`] / [`Scalar`] as opaque.
#[derive(Clone, Debug)]
pub struct Group {
    pub(crate) kind: GroupKind,
    pub(crate) inner: GroupImpl,
}

#[derive(Clone, Debug)]
pub(crate) enum GroupImpl {
    Dl(Arc<DlGroup>),
    Ec(Arc<EcGroup>),
}

impl Group {
    /// Which concrete instantiation this is.
    pub fn kind(&self) -> GroupKind {
        self.kind
    }

    /// Hit/miss/eviction counters for this group's fixed-base comb-table
    /// cache ([`crate::ShardedLru`]). [`GroupKind::group`] hands every
    /// session the same process-wide instantiation, so these are
    /// cross-session totals — a service scrapes them to observe how well
    /// warm tables amortize across its traffic.
    pub fn comb_cache_stats(&self) -> crate::cache::CacheStats {
        match &self.inner {
            GroupImpl::Dl(g) => g.comb_cache_stats(),
            GroupImpl::Ec(g) => g.comb_cache_stats(),
        }
    }

    /// The prime group order `q`.
    pub fn order(&self) -> &BigUint {
        match &self.inner {
            GroupImpl::Dl(g) => g.order(),
            GroupImpl::Ec(g) => g.order(),
        }
    }

    /// The identity element (`1` / point at infinity).
    pub fn identity(&self) -> Element {
        match &self.inner {
            GroupImpl::Dl(_) => Element::Dl(BigUint::one()),
            GroupImpl::Ec(_) => Element::Ec(EcPoint::infinity()),
        }
    }

    /// The fixed generator `g`.
    pub fn generator(&self) -> &Element {
        match &self.inner {
            GroupImpl::Dl(g) => g.generator(),
            GroupImpl::Ec(g) => g.generator(),
        }
    }

    /// Fallible group operation `a · b` (point addition for ECC).
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::FamilyMismatch`] if an element belongs to the
    /// other group family.
    pub fn try_op(&self, a: &Element, b: &Element) -> Result<Element, GroupError> {
        match (&self.inner, a, b) {
            (GroupImpl::Dl(g), Element::Dl(a), Element::Dl(b)) => Ok(Element::Dl(g.mul(a, b))),
            (GroupImpl::Ec(g), Element::Ec(a), Element::Ec(b)) => Ok(Element::Ec(g.add(a, b))),
            _ => Err(GroupError::FamilyMismatch { operation: "op" }),
        }
    }

    /// Group operation `a · b` (point addition for ECC).
    ///
    /// # Panics
    ///
    /// Panics if an element belongs to the other group family; use
    /// [`Group::try_op`] for untrusted input.
    pub fn op(&self, a: &Element, b: &Element) -> Element {
        // tidy:allow(panic) — documented panicking twin of try_op; protocol paths use try_* on untrusted input
        self.try_op(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible inverse element `a^{-1}` (point negation for ECC).
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::FamilyMismatch`] if the element belongs to the
    /// other group family.
    pub fn try_inv(&self, a: &Element) -> Result<Element, GroupError> {
        match (&self.inner, a) {
            (GroupImpl::Dl(g), Element::Dl(a)) => Ok(Element::Dl(g.inv(a))),
            (GroupImpl::Ec(g), Element::Ec(a)) => Ok(Element::Ec(g.neg(a))),
            _ => Err(GroupError::FamilyMismatch { operation: "inv" }),
        }
    }

    /// Inverse element `a^{-1}` (point negation for ECC).
    ///
    /// # Panics
    ///
    /// Panics if the element belongs to the other group family; use
    /// [`Group::try_inv`] for untrusted input.
    pub fn inv(&self, a: &Element) -> Element {
        // tidy:allow(panic) — documented panicking twin of try_inv; protocol paths use try_* on untrusted input
        self.try_inv(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `a / b`, i.e. `a · b^{-1}`.
    pub fn div(&self, a: &Element, b: &Element) -> Element {
        self.op(a, &self.inv(b))
    }

    /// Fallible exponentiation `a^s` (scalar multiplication for ECC).
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::FamilyMismatch`] if the element belongs to the
    /// other group family.
    pub fn try_exp(&self, a: &Element, s: &Scalar) -> Result<Element, GroupError> {
        match (&self.inner, a) {
            (GroupImpl::Dl(g), Element::Dl(a)) => Ok(Element::Dl(g.pow(a, &s.0))),
            (GroupImpl::Ec(g), Element::Ec(a)) => Ok(Element::Ec(g.scalar_mul(a, &s.0))),
            _ => Err(GroupError::FamilyMismatch { operation: "exp" }),
        }
    }

    /// Exponentiation `a^s` (scalar multiplication for ECC).
    ///
    /// # Panics
    ///
    /// Panics if the element belongs to the other group family; use
    /// [`Group::try_exp`] for untrusted input.
    pub fn exp(&self, a: &Element, s: &Scalar) -> Element {
        // tidy:allow(panic) — documented panicking twin of try_exp; protocol paths use try_* on untrusted input
        self.try_exp(a, s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Simultaneous double-base exponentiation `a^s · b^t`.
    ///
    /// Both exponentiations share one squaring/doubling ladder (Shamir's
    /// trick), costing roughly two-thirds of two separate [`Group::exp`]
    /// calls. This is the shape of a fused re-randomized partial decryption
    /// (`α^r · β^{−x·r}`), the dominant operation of the shuffle chain.
    pub fn exp_dual(&self, a: &Element, s: &Scalar, b: &Element, t: &Scalar) -> Element {
        match (&self.inner, a, b) {
            (GroupImpl::Dl(g), Element::Dl(a), Element::Dl(b)) => {
                Element::Dl(g.pow_dual(a, &s.0, b, &t.0))
            }
            (GroupImpl::Ec(g), Element::Ec(a), Element::Ec(b)) => {
                Element::Ec(g.scalar_mul_dual(a, &s.0, b, &t.0))
            }
            // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
            _ => panic!(
                "{}",
                GroupError::FamilyMismatch {
                    operation: "exp_dual"
                }
            ),
        }
    }

    /// Batch [`Group::exp_dual`]: elliptic-curve results share a single
    /// field inversion for the final affine conversion.
    pub fn exp_dual_batch(&self, items: &[(&Element, &Scalar, &Element, &Scalar)]) -> Vec<Element> {
        match &self.inner {
            GroupImpl::Dl(g) => items
                .iter()
                .map(|(a, s, b, t)| match (a, b) {
                    (Element::Dl(a), Element::Dl(b)) => Element::Dl(g.pow_dual(a, &s.0, b, &t.0)),
                    // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                    _ => panic!(
                        "{}",
                        GroupError::FamilyMismatch {
                            operation: "exp_dual_batch"
                        }
                    ),
                })
                .collect(),
            GroupImpl::Ec(g) => {
                let pts: Vec<(&EcPoint, &BigUint, &EcPoint, &BigUint)> = items
                    .iter()
                    .map(|(a, s, b, t)| match (a, b) {
                        (Element::Ec(a), Element::Ec(b)) => (a, &s.0, b, &t.0),
                        _ => {
                            // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                            panic!(
                                "{}",
                                GroupError::FamilyMismatch {
                                    operation: "exp_dual_batch"
                                }
                            )
                        }
                    })
                    .collect();
                g.scalar_mul_dual_batch(&pts)
                    .into_iter()
                    .map(Element::Ec)
                    .collect()
            }
        }
    }

    /// Batch [`Group::exp`] over independent (base, scalar) pairs;
    /// elliptic-curve results share a single field inversion.
    pub fn exp_batch(&self, pairs: &[(&Element, &Scalar)]) -> Vec<Element> {
        match &self.inner {
            GroupImpl::Dl(g) => pairs
                .iter()
                .map(|(a, s)| match a {
                    Element::Dl(a) => Element::Dl(g.pow(a, &s.0)),
                    // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                    _ => panic!(
                        "{}",
                        GroupError::FamilyMismatch {
                            operation: "exp_batch"
                        }
                    ),
                })
                .collect(),
            GroupImpl::Ec(g) => {
                let pts: Vec<(&EcPoint, &BigUint)> = pairs
                    .iter()
                    .map(|(a, s)| match a {
                        Element::Ec(a) => (a, &s.0),
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "exp_batch"
                            }
                        ),
                    })
                    .collect();
                g.scalar_mul_batch(&pts)
                    .into_iter()
                    .map(Element::Ec)
                    .collect()
            }
        }
    }

    /// `g^s` for the fixed generator.
    ///
    /// Uses a per-group comb table (built lazily, shared process-wide):
    /// roughly 4× faster than [`Group::exp`] on an arbitrary base, which
    /// matters because key generation, proof commitments, and one of the
    /// two exponentiations of every encryption are fixed-base.
    pub fn exp_gen(&self, s: &Scalar) -> Element {
        match &self.inner {
            GroupImpl::Dl(g) => Element::Dl(g.pow_gen(&s.0)),
            GroupImpl::Ec(g) => Element::Ec(g.scalar_mul_gen(&s.0)),
        }
    }

    /// Batch [`Group::exp_gen`]; elliptic-curve results share a single
    /// field inversion.
    pub fn exp_gen_batch(&self, scalars: &[Scalar]) -> Vec<Element> {
        match &self.inner {
            GroupImpl::Dl(g) => scalars
                .iter()
                .map(|s| Element::Dl(g.pow_gen(&s.0)))
                .collect(),
            GroupImpl::Ec(g) => {
                let ks: Vec<&BigUint> = scalars.iter().map(|s| &s.0).collect();
                g.scalar_mul_gen_batch(&ks)
                    .into_iter()
                    .map(Element::Ec)
                    .collect()
            }
        }
    }

    /// Multi-exponentiation `Π aᵢ^{sᵢ}` evaluated in a single pass.
    ///
    /// Backed by the in-crate MSM engine: Straus interleaving for small
    /// batches, Pippenger bucket aggregation for large ones, with the
    /// window width auto-selected from the term count and scalar
    /// bit-length. Far cheaper than folding [`Group::exp`] results with
    /// [`Group::op`] — the amortized per-term cost falls toward a few
    /// dozen group operations — which is what makes batch Schnorr
    /// verification (`ppgr-zkp`) collapse k proofs into one equation.
    ///
    /// The empty product is the identity.
    ///
    /// Returns [`GroupError::FamilyMismatch`] if any element belongs to
    /// the other group family.
    pub fn try_multi_exp(&self, pairs: &[(&Element, &Scalar)]) -> Result<Element, GroupError> {
        match &self.inner {
            GroupImpl::Dl(g) => {
                let mut items: Vec<(&BigUint, &BigUint)> = Vec::with_capacity(pairs.len());
                for (a, s) in pairs {
                    let Element::Dl(a) = a else {
                        return Err(GroupError::FamilyMismatch {
                            operation: "multi_exp",
                        });
                    };
                    items.push((a, &s.0));
                }
                Ok(Element::Dl(crate::msm::msm_dl(g, &items)))
            }
            GroupImpl::Ec(g) => {
                let mut items: Vec<(&EcPoint, &BigUint)> = Vec::with_capacity(pairs.len());
                for (a, s) in pairs {
                    let Element::Ec(a) = a else {
                        return Err(GroupError::FamilyMismatch {
                            operation: "multi_exp",
                        });
                    };
                    items.push((a, &s.0));
                }
                Ok(Element::Ec(crate::msm::msm_ec(g, &items)))
            }
        }
    }

    /// Multi-exponentiation `Π aᵢ^{sᵢ}` (see [`Group::try_multi_exp`]).
    ///
    /// # Panics
    ///
    /// Panics if any element belongs to the other group family.
    pub fn multi_exp(&self, pairs: &[(&Element, &Scalar)]) -> Element {
        // tidy:allow(panic) — documented panicking twin of try_multi_exp; protocol paths use try_* on untrusted input
        self.try_multi_exp(pairs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Batch exponentiation of many bases by one *shared* scalar.
    ///
    /// The scalar's digit recoding is computed once and replayed for
    /// every base (wNAF odd-multiple tables on the EC family, shared
    /// window digits on the DL family), and the elliptic-curve results
    /// share a single field inversion. This is the shape of a decryption
    /// hop: one key share, every ciphertext's `β`.
    ///
    /// # Panics
    ///
    /// Panics if any element belongs to the other group family.
    pub fn exp_same_batch(&self, bases: &[&Element], s: &Scalar) -> Vec<Element> {
        match &self.inner {
            GroupImpl::Dl(g) => {
                let bs: Vec<&BigUint> = bases
                    .iter()
                    .map(|a| match a {
                        Element::Dl(a) => a,
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "exp_same_batch"
                            }
                        ),
                    })
                    .collect();
                g.pow_same_batch(&bs, &s.0)
                    .into_iter()
                    .map(Element::Dl)
                    .collect()
            }
            GroupImpl::Ec(g) => {
                let pts: Vec<&EcPoint> = bases
                    .iter()
                    .map(|a| match a {
                        Element::Ec(a) => a,
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "exp_same_batch"
                            }
                        ),
                    })
                    .collect();
                g.scalar_mul_same_batch(&pts, &s.0)
                    .into_iter()
                    .map(Element::Ec)
                    .collect()
            }
        }
    }

    /// Batch [`Group::op`]: elliptic-curve sums stay in Jacobian form and
    /// share a single field inversion for the final affine conversion,
    /// versus one inversion per call when looping over [`Group::op`]. The
    /// DL family has no per-op inversion to amortize, so there it is just
    /// the loop.
    ///
    /// # Panics
    ///
    /// Panics if any element belongs to the other group family.
    pub fn op_batch(&self, pairs: &[(&Element, &Element)]) -> Vec<Element> {
        match &self.inner {
            GroupImpl::Dl(g) => pairs
                .iter()
                .map(|(a, b)| match (a, b) {
                    (Element::Dl(a), Element::Dl(b)) => Element::Dl(g.mul(a, b)),
                    // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                    _ => panic!(
                        "{}",
                        GroupError::FamilyMismatch {
                            operation: "op_batch"
                        }
                    ),
                })
                .collect(),
            GroupImpl::Ec(g) => {
                let pts: Vec<(&EcPoint, &EcPoint)> = pairs
                    .iter()
                    .map(|(a, b)| match (a, b) {
                        (Element::Ec(a), Element::Ec(b)) => (a, b),
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "op_batch"
                            }
                        ),
                    })
                    .collect();
                g.add_batch(&pts).into_iter().map(Element::Ec).collect()
            }
        }
    }

    /// Running products (inclusive prefix scan): `out[i] = a₀ ∘ … ∘ aᵢ`.
    /// The elliptic-curve accumulator stays in Jacobian form and all
    /// prefixes share one field inversion; chaining [`Group::op`] pays one
    /// inversion per prefix. The DL family has nothing to amortize, so
    /// there it is just the loop.
    ///
    /// # Panics
    ///
    /// Panics if any element belongs to the other group family.
    pub fn op_scan(&self, items: &[&Element]) -> Vec<Element> {
        match &self.inner {
            GroupImpl::Dl(g) => {
                let mut acc = BigUint::one();
                items
                    .iter()
                    .map(|a| match a {
                        Element::Dl(a) => {
                            acc = g.mul(&acc, a);
                            Element::Dl(acc.clone())
                        }
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "op_scan"
                            }
                        ),
                    })
                    .collect()
            }
            GroupImpl::Ec(g) => {
                let pts: Vec<&EcPoint> = items
                    .iter()
                    .map(|a| match a {
                        Element::Ec(a) => a,
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "op_scan"
                            }
                        ),
                    })
                    .collect();
                g.add_scan(&pts).into_iter().map(Element::Ec).collect()
            }
        }
    }

    /// Fused multiply-and-exponentiate by one shared scalar:
    /// `out[i] = cᵢ · aᵢ^s`. On the elliptic-curve family the multiply is
    /// one mixed addition folded into the batched ladder *before* the
    /// shared affine conversion, so the whole composition costs one field
    /// inversion per batch instead of one per element. This is the shape
    /// of a gathered partial decryption: `α · β^{−x}` across a ciphertext
    /// set.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any element belongs to the
    /// other group family.
    pub fn exp_same_mul_batch(
        &self,
        factors: &[&Element],
        bases: &[&Element],
        s: &Scalar,
    ) -> Vec<Element> {
        assert_eq!(factors.len(), bases.len(), "one factor per base");
        match &self.inner {
            GroupImpl::Dl(g) => {
                let bs: Vec<&BigUint> = bases
                    .iter()
                    .map(|a| match a {
                        Element::Dl(a) => a,
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "exp_same_mul_batch"
                            }
                        ),
                    })
                    .collect();
                g.pow_same_batch(&bs, &s.0)
                    .into_iter()
                    .zip(factors)
                    .map(|(p, c)| match c {
                        Element::Dl(c) => Element::Dl(g.mul(c, &p)),
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "exp_same_mul_batch"
                            }
                        ),
                    })
                    .collect()
            }
            GroupImpl::Ec(g) => {
                let unwrap = |a: &&Element| match a {
                    Element::Ec(a) => {
                        // The closure can't return a reference into its
                        // argument, so clone; points are a few words.
                        a.clone()
                    }
                    // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                    _ => panic!(
                        "{}",
                        GroupError::FamilyMismatch {
                            operation: "exp_same_mul_batch"
                        }
                    ),
                };
                let cs: Vec<EcPoint> = factors.iter().map(unwrap).collect();
                let ps: Vec<EcPoint> = bases.iter().map(unwrap).collect();
                let cs_refs: Vec<&EcPoint> = cs.iter().collect();
                let ps_refs: Vec<&EcPoint> = ps.iter().collect();
                g.scalar_mul_same_mul_batch(&cs_refs, &ps_refs, &s.0)
                    .into_iter()
                    .map(Element::Ec)
                    .collect()
            }
        }
    }

    /// Fused hop batch: for each `(a, s, b, t)` returns the pair
    /// `(a^s·b^t, b^s)` — a re-randomized partial decryption and its new
    /// `β` in one call. The elliptic-curve kernel reuses the recoding of
    /// `s` and the precomputed table of `b` across both halves and shares
    /// the affine conversions batch-wide; composing [`Group::exp_dual_batch`]
    /// with [`Group::exp_batch`] pays for both again.
    ///
    /// # Panics
    ///
    /// Panics if any element belongs to the other group family.
    pub fn exp_hop_batch(
        &self,
        items: &[(&Element, &Scalar, &Element, &Scalar)],
    ) -> Vec<(Element, Element)> {
        match &self.inner {
            GroupImpl::Dl(g) => items
                .iter()
                .map(|(a, s, b, t)| match (a, b) {
                    (Element::Dl(a), Element::Dl(b)) => (
                        Element::Dl(g.pow_dual(a, &s.0, b, &t.0)),
                        Element::Dl(g.pow(b, &s.0)),
                    ),
                    // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                    _ => panic!(
                        "{}",
                        GroupError::FamilyMismatch {
                            operation: "exp_hop_batch"
                        }
                    ),
                })
                .collect(),
            GroupImpl::Ec(g) => {
                let pts: Vec<(&EcPoint, &BigUint, &EcPoint, &BigUint)> = items
                    .iter()
                    .map(|(a, s, b, t)| match (a, b) {
                        (Element::Ec(a), Element::Ec(b)) => (a, &s.0, b, &t.0),
                        _ => {
                            // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                            panic!(
                                "{}",
                                GroupError::FamilyMismatch {
                                    operation: "exp_hop_batch"
                                }
                            )
                        }
                    })
                    .collect();
                g.scalar_mul_hop_batch(&pts)
                    .into_iter()
                    .map(|(x, y)| (Element::Ec(x), Element::Ec(y)))
                    .collect()
            }
        }
    }

    /// Prepares a hop's scalar pair ahead of time: for each randomizer `r`
    /// the product `−x·r` with the hop owner's secret share, plus the
    /// curve-side order reduction and wNAF recoding of both scalars. All
    /// of this depends only on the scalars — never on the ciphertexts the
    /// hop will eventually touch — so a precompute phase can run it before
    /// any input exists and [`Group::exp_hop_prepared_batch`] can skip it
    /// online.
    pub fn prepare_hop_scalars(&self, secret: &Scalar, rs: &[Scalar]) -> Vec<HopScalars> {
        rs.iter()
            .map(|r| {
                let neg_xr = self.scalar_neg(&self.scalar_mul(secret, r));
                let digits = match &self.inner {
                    GroupImpl::Dl(_) => None,
                    GroupImpl::Ec(g) => {
                        let recode = |k: &BigUint| {
                            let k = k % g.order();
                            if k.is_zero() {
                                Vec::new()
                            } else {
                                crate::msm::wnaf_digits(&k, 4)
                            }
                        };
                        Some((recode(&r.0), recode(&neg_xr.0)))
                    }
                };
                HopScalars {
                    r: r.clone(),
                    neg_xr,
                    digits,
                }
            })
            .collect()
    }

    /// [`Group::exp_hop_batch`] over scalars prepared by
    /// [`Group::prepare_hop_scalars`]: for each `(a, prep, b)` returns
    /// `(a^r·b^{−xr}, b^r)`, reusing the stored recodings instead of
    /// reducing and recoding every scalar inside the call. Results are
    /// element-for-element identical to the unprepared batch.
    ///
    /// # Panics
    ///
    /// Panics if any element belongs to the other group family, or if the
    /// preparation was done by a group of the other family.
    pub fn exp_hop_prepared_batch(
        &self,
        items: &[(&Element, &HopScalars, &Element)],
    ) -> Vec<(Element, Element)> {
        match &self.inner {
            GroupImpl::Dl(g) => items
                .iter()
                .map(|(a, hs, b)| match (a, b) {
                    (Element::Dl(a), Element::Dl(b)) => (
                        Element::Dl(g.pow_dual(a, &hs.r.0, b, &hs.neg_xr.0)),
                        Element::Dl(g.pow(b, &hs.r.0)),
                    ),
                    // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                    _ => panic!(
                        "{}",
                        GroupError::FamilyMismatch {
                            operation: "exp_hop_prepared_batch"
                        }
                    ),
                })
                .collect(),
            GroupImpl::Ec(g) => {
                let pts: Vec<(&EcPoint, &[i64], &EcPoint, &[i64])> = items
                    .iter()
                    .map(|(a, hs, b)| match (a, hs.digits.as_ref(), b) {
                        (Element::Ec(a), Some((d1, d2)), Element::Ec(b)) => {
                            (a, d1.as_slice(), b, d2.as_slice())
                        }
                        // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
                        _ => panic!(
                            "{}",
                            GroupError::FamilyMismatch {
                                operation: "exp_hop_prepared_batch"
                            }
                        ),
                    })
                    .collect();
                g.scalar_mul_hop_digits_batch(&pts)
                    .into_iter()
                    .map(|(x, y)| (Element::Ec(x), Element::Ec(y)))
                    .collect()
            }
        }
    }

    /// Builds (or fetches from the per-group cache) a fixed-base comb table
    /// for `base`, enabling [`Group::exp_prepared`].
    ///
    /// # Panics
    ///
    /// Panics if the element belongs to the other group family.
    pub fn prepare_base(&self, base: &Element) -> FixedBaseTable {
        let inner = match (&self.inner, base) {
            (GroupImpl::Dl(g), Element::Dl(a)) => TableImpl::Dl(g.comb_for(a)),
            (GroupImpl::Ec(g), Element::Ec(p)) => TableImpl::Ec(g.comb_for(p)),
            // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
            _ => panic!(
                "{}",
                GroupError::FamilyMismatch {
                    operation: "prepare_base"
                }
            ),
        };
        FixedBaseTable {
            base: base.clone(),
            inner,
        }
    }

    /// Fixed-base exponentiation `base^s` through a prepared table.
    ///
    /// # Panics
    ///
    /// Panics if the table was built by a group of the other family.
    pub fn exp_prepared(&self, table: &FixedBaseTable, s: &Scalar) -> Element {
        match (&self.inner, &table.inner) {
            (GroupImpl::Dl(g), TableImpl::Dl(c)) => Element::Dl(g.pow_comb(c, &s.0)),
            (GroupImpl::Ec(g), TableImpl::Ec(c)) => Element::Ec(g.scalar_mul_comb(c, &s.0)),
            // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
            _ => panic!(
                "{}",
                GroupError::FamilyMismatch {
                    operation: "exp_prepared"
                }
            ),
        }
    }

    /// Batch [`Group::exp_prepared`]; elliptic-curve results share a single
    /// field inversion.
    pub fn exp_prepared_batch(&self, table: &FixedBaseTable, scalars: &[Scalar]) -> Vec<Element> {
        match (&self.inner, &table.inner) {
            (GroupImpl::Dl(g), TableImpl::Dl(c)) => scalars
                .iter()
                .map(|s| Element::Dl(g.pow_comb(c, &s.0)))
                .collect(),
            (GroupImpl::Ec(g), TableImpl::Ec(c)) => {
                let ks: Vec<&BigUint> = scalars.iter().map(|s| &s.0).collect();
                g.scalar_mul_comb_batch(c, &ks)
                    .into_iter()
                    .map(Element::Ec)
                    .collect()
            }
            // tidy:allow(panic) — documented family-mismatch contract; mixing families is a caller bug, not input
            _ => panic!(
                "{}",
                GroupError::FamilyMismatch {
                    operation: "exp_prepared_batch"
                }
            ),
        }
    }

    /// Returns `true` if `a` is the identity.
    pub fn is_identity(&self, a: &Element) -> bool {
        match a {
            Element::Dl(v) => v.is_one(),
            Element::Ec(p) => p.is_infinity(),
        }
    }

    /// Fallible fixed-length wire encoding of an element.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::FamilyMismatch`] if the element belongs to the
    /// other group family.
    pub fn try_encode(&self, a: &Element) -> Result<Vec<u8>, GroupError> {
        match (&self.inner, a) {
            (GroupImpl::Dl(g), Element::Dl(a)) => Ok(g.encode(a)),
            (GroupImpl::Ec(g), Element::Ec(a)) => Ok(g.encode(a)),
            _ => Err(GroupError::FamilyMismatch {
                operation: "encode",
            }),
        }
    }

    /// Fixed-length wire encoding of an element.
    ///
    /// DL elements are big-endian residues padded to the modulus width; EC
    /// points use SEC1 compressed form (`0x02/0x03 || x`, identity = `0x00…`).
    ///
    /// # Panics
    ///
    /// Panics if the element belongs to the other group family; use
    /// [`Group::try_encode`] for untrusted input.
    pub fn encode(&self, a: &Element) -> Vec<u8> {
        // tidy:allow(panic) — documented panicking twin of try_encode; protocol paths use try_* on untrusted input
        self.try_encode(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Decodes an element produced by [`Group::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeElementError`] when the bytes have the wrong length,
    /// encode a value outside the field, or do not lie in the group.
    pub fn decode(&self, bytes: &[u8]) -> Result<Element, DecodeElementError> {
        match &self.inner {
            GroupImpl::Dl(g) => g.decode(bytes).map(Element::Dl),
            GroupImpl::Ec(g) => g.decode(bytes).map(Element::Ec),
        }
    }

    /// Byte length of an encoded element (ciphertext-size accounting for the
    /// network simulation uses `2 ×` this per ElGamal ciphertext).
    pub fn element_len(&self) -> usize {
        match &self.inner {
            GroupImpl::Dl(g) => g.element_len(),
            GroupImpl::Ec(g) => g.element_len(),
        }
    }

    /// A uniformly random scalar in `[0, q)`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        Scalar(random_below(rng, self.order()))
    }

    /// A uniformly random *nonzero* scalar.
    pub fn random_nonzero_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        loop {
            let s = self.random_scalar(rng);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// Embeds an integer as a scalar (reduced mod `q`).
    pub fn scalar_from(&self, v: &BigUint) -> Scalar {
        Scalar(v % self.order())
    }

    /// Embeds a `u64` as a scalar.
    pub fn scalar_from_u64(&self, v: u64) -> Scalar {
        self.scalar_from(&BigUint::from(v))
    }

    /// `a + b mod q`.
    pub fn scalar_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar((&a.0 + &b.0) % self.order())
    }

    /// `a − b mod q`.
    pub fn scalar_sub(&self, a: &Scalar, b: &Scalar) -> Scalar {
        let q = self.order();
        if a.0 >= b.0 {
            Scalar(&a.0 - &b.0)
        } else {
            Scalar(&(&a.0 + q) - &b.0)
        }
    }

    /// `a · b mod q`.
    pub fn scalar_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(&(&a.0 * &b.0) % self.order())
    }

    /// `−a mod q`.
    pub fn scalar_neg(&self, a: &Scalar) -> Scalar {
        if a.0.is_zero() {
            a.clone()
        } else {
            Scalar(self.order() - &a.0)
        }
    }

    /// `a^{-1} mod q`, or `None` for zero.
    pub fn scalar_inv(&self, a: &Scalar) -> Option<Scalar> {
        a.0.modinv(self.order()).map(Scalar)
    }
}

#[cfg(test)]
mod tests {
    use crate::{GroupError, GroupKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_arithmetic_mod_q() {
        let g = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let a = g.random_scalar(&mut rng);
        let b = g.random_scalar(&mut rng);
        let sum = g.scalar_add(&a, &b);
        assert_eq!(g.scalar_sub(&sum, &b), a);
        let prod = g.scalar_mul(&a, &b);
        let b_inv = g.scalar_inv(&b).unwrap();
        assert_eq!(g.scalar_mul(&prod, &b_inv), a);
        assert_eq!(g.scalar_add(&a, &g.scalar_neg(&a)), g.scalar_from_u64(0));
    }

    #[test]
    fn fixed_base_matches_generic_exp() {
        for kind in [GroupKind::Ecc160, GroupKind::Ecc256, GroupKind::Dl1024] {
            let g = kind.group();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..5 {
                let s = g.random_scalar(&mut rng);
                assert_eq!(
                    g.exp_gen(&s),
                    g.exp(g.generator(), &s),
                    "comb table disagrees with square-and-multiply on {kind}"
                );
            }
            // Edge scalars.
            assert!(g.is_identity(&g.exp_gen(&g.scalar_from_u64(0))));
            assert_eq!(g.exp_gen(&g.scalar_from_u64(1)), *g.generator());
        }
    }

    #[test]
    #[should_panic(expected = "family mismatch")]
    fn cross_family_op_panics() {
        let dl = GroupKind::Dl1024.group();
        let ec = GroupKind::Ecc160.group();
        let e = ec.generator().clone();
        let d = dl.generator().clone();
        let _ = dl.op(&d, &e);
    }

    #[test]
    fn try_ops_reject_cross_family_without_panicking() {
        let dl = GroupKind::Dl1024.group();
        let ec = GroupKind::Ecc160.group();
        let e = ec.generator().clone();
        let d = dl.generator().clone();
        let s = dl.scalar_from_u64(3);
        assert_eq!(
            dl.try_op(&d, &e),
            Err(GroupError::FamilyMismatch { operation: "op" })
        );
        assert_eq!(
            dl.try_inv(&e),
            Err(GroupError::FamilyMismatch { operation: "inv" })
        );
        assert_eq!(
            dl.try_exp(&e, &s),
            Err(GroupError::FamilyMismatch { operation: "exp" })
        );
        assert_eq!(
            dl.try_encode(&e),
            Err(GroupError::FamilyMismatch {
                operation: "encode"
            })
        );
        // The error's rendering is what the panicking wrappers print.
        let msg = GroupError::FamilyMismatch { operation: "op" }.to_string();
        assert!(msg.contains("element/group family mismatch"), "{msg}");
        // Matching families still succeed.
        assert!(dl.try_op(&d, &d).is_ok());
        assert!(ec.try_exp(&e, &ec.scalar_from_u64(5)).is_ok());
    }

    #[test]
    fn exp_dual_matches_separate_exps() {
        for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
            let g = kind.group();
            let mut rng = StdRng::seed_from_u64(21);
            let a = g.exp_gen(&g.random_scalar(&mut rng));
            let b = g.exp_gen(&g.random_scalar(&mut rng));
            let s = g.random_scalar(&mut rng);
            let t = g.random_scalar(&mut rng);
            let expect = g.op(&g.exp(&a, &s), &g.exp(&b, &t));
            assert_eq!(g.exp_dual(&a, &s, &b, &t), expect, "{kind}");
            let batch = g.exp_dual_batch(&[(&a, &s, &b, &t), (&b, &t, &a, &s)]);
            assert_eq!(batch, vec![expect.clone(), expect], "{kind}");
        }
    }

    #[test]
    fn prepared_base_matches_generic_exp() {
        for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
            let g = kind.group();
            let mut rng = StdRng::seed_from_u64(33);
            let base = g.exp_gen(&g.random_scalar(&mut rng));
            let table = g.prepare_base(&base);
            assert_eq!(table.base(), &base);
            let scalars: Vec<_> = (0..4).map(|_| g.random_scalar(&mut rng)).collect();
            for s in &scalars {
                assert_eq!(g.exp_prepared(&table, s), g.exp(&base, s), "{kind}");
            }
            let batch = g.exp_prepared_batch(&table, &scalars);
            for (s, got) in scalars.iter().zip(&batch) {
                assert_eq!(got, &g.exp(&base, s), "{kind}");
            }
            // Second prepare hits the cache (same underlying table).
            let again = g.prepare_base(&base);
            assert_eq!(
                g.exp_prepared(&again, &scalars[0]),
                g.exp(&base, &scalars[0])
            );
        }
    }

    #[test]
    fn exp_batch_apis_match_singles() {
        let g = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(44);
        let a = g.exp_gen(&g.random_scalar(&mut rng));
        let b = g.exp_gen(&g.random_scalar(&mut rng));
        let s = g.random_scalar(&mut rng);
        let t = g.scalar_from_u64(0);
        let batch = g.exp_batch(&[(&a, &s), (&b, &t)]);
        assert_eq!(batch[0], g.exp(&a, &s));
        assert!(g.is_identity(&batch[1]));
        let gen_batch = g.exp_gen_batch(&[s.clone(), t]);
        assert_eq!(gen_batch[0], g.exp_gen(&s));
        assert!(g.is_identity(&gen_batch[1]));
    }

    #[test]
    fn fused_batch_apis_match_compositions() {
        for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
            let g = kind.group();
            let mut rng = StdRng::seed_from_u64(45);
            let a = g.exp_gen(&g.random_scalar(&mut rng));
            let b = g.exp_gen(&g.random_scalar(&mut rng));
            let id = g.identity();
            let s = g.random_scalar(&mut rng);
            let t = g.random_scalar(&mut rng);
            let zero = g.scalar_from_u64(0);

            let ops = g.op_batch(&[(&a, &b), (&a, &id), (&id, &id)]);
            assert_eq!(ops[0], g.op(&a, &b));
            assert_eq!(ops[1], a);
            assert!(g.is_identity(&ops[2]));

            let fused = g.exp_same_mul_batch(&[&a, &id, &b], &[&b, &b, &id], &s);
            assert_eq!(fused[0], g.op(&a, &g.exp(&b, &s)));
            assert_eq!(fused[1], g.exp(&b, &s));
            assert_eq!(fused[2], b);
            let by_zero = g.exp_same_mul_batch(&[&a], &[&b], &zero);
            assert_eq!(by_zero[0], a);

            // Every degenerate hop shape: live, zero scalars, identity bases.
            let hops = g.exp_hop_batch(&[
                (&a, &s, &b, &t),
                (&a, &zero, &b, &t),
                (&a, &s, &b, &zero),
                (&a, &s, &id, &t),
                (&id, &s, &b, &t),
            ]);
            for (item, out) in [
                (&a, &s, &b, &t),
                (&a, &zero, &b, &t),
                (&a, &s, &b, &zero),
                (&a, &s, &id, &t),
                (&id, &s, &b, &t),
            ]
            .iter()
            .zip(&hops)
            {
                let (x, s, y, t) = *item;
                assert_eq!(out.0, g.op(&g.exp(x, s), &g.exp(y, t)), "{kind:?}");
                assert_eq!(out.1, g.exp(y, s), "{kind:?}");
            }
        }
    }
}
