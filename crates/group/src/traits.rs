//! The [`Group`] handle and opaque [`Element`] values.

use crate::dl::DlGroup;
use crate::ec::{EcGroup, EcPoint};
use crate::kind::GroupKind;
use crate::scalar::Scalar;
use ppgr_bigint::{random_below, BigUint};
use rand::Rng;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// An element of a [`Group`] (a residue for DL groups, a point for ECC).
///
/// Elements are opaque; combine them with [`Group::op`], [`Group::exp`] etc.
#[derive(Clone, Eq, PartialEq, Hash)]
pub enum Element {
    /// A quadratic residue modulo the safe prime of a [`DlGroup`].
    Dl(BigUint),
    /// A point on the curve of an [`EcGroup`].
    Ec(EcPoint),
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Dl(v) => write!(f, "Element::Dl(0x{v:x})"),
            Element::Ec(p) => write!(f, "Element::Ec({p:?})"),
        }
    }
}

/// Error returned when decoding a serialized group element fails.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct DecodeElementError {
    pub(crate) reason: &'static str,
}

impl fmt::Display for DecodeElementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid group element encoding: {}", self.reason)
    }
}

impl Error for DecodeElementError {}

/// A handle to a prime-order group in which DDH is assumed hard.
///
/// Cloning is cheap (`Arc` internally). All protocol crates take a `&Group`
/// and treat [`Element`] / [`Scalar`] as opaque.
#[derive(Clone, Debug)]
pub struct Group {
    pub(crate) kind: GroupKind,
    pub(crate) inner: GroupImpl,
}

#[derive(Clone, Debug)]
pub(crate) enum GroupImpl {
    Dl(Arc<DlGroup>),
    Ec(Arc<EcGroup>),
}

impl Group {
    /// Which concrete instantiation this is.
    pub fn kind(&self) -> GroupKind {
        self.kind
    }

    /// The prime group order `q`.
    pub fn order(&self) -> &BigUint {
        match &self.inner {
            GroupImpl::Dl(g) => g.order(),
            GroupImpl::Ec(g) => g.order(),
        }
    }

    /// The identity element (`1` / point at infinity).
    pub fn identity(&self) -> Element {
        match &self.inner {
            GroupImpl::Dl(_) => Element::Dl(BigUint::one()),
            GroupImpl::Ec(_) => Element::Ec(EcPoint::infinity()),
        }
    }

    /// The fixed generator `g`.
    pub fn generator(&self) -> &Element {
        match &self.inner {
            GroupImpl::Dl(g) => g.generator(),
            GroupImpl::Ec(g) => g.generator(),
        }
    }

    /// Group operation `a · b` (point addition for ECC).
    ///
    /// # Panics
    ///
    /// Panics if an element belongs to the other group family.
    pub fn op(&self, a: &Element, b: &Element) -> Element {
        match (&self.inner, a, b) {
            (GroupImpl::Dl(g), Element::Dl(a), Element::Dl(b)) => Element::Dl(g.mul(a, b)),
            (GroupImpl::Ec(g), Element::Ec(a), Element::Ec(b)) => Element::Ec(g.add(a, b)),
            _ => panic!("element/group family mismatch"),
        }
    }

    /// Inverse element `a^{-1}` (point negation for ECC).
    pub fn inv(&self, a: &Element) -> Element {
        match (&self.inner, a) {
            (GroupImpl::Dl(g), Element::Dl(a)) => Element::Dl(g.inv(a)),
            (GroupImpl::Ec(g), Element::Ec(a)) => Element::Ec(g.neg(a)),
            _ => panic!("element/group family mismatch"),
        }
    }

    /// `a / b`, i.e. `a · b^{-1}`.
    pub fn div(&self, a: &Element, b: &Element) -> Element {
        self.op(a, &self.inv(b))
    }

    /// Exponentiation `a^s` (scalar multiplication for ECC).
    pub fn exp(&self, a: &Element, s: &Scalar) -> Element {
        match (&self.inner, a) {
            (GroupImpl::Dl(g), Element::Dl(a)) => Element::Dl(g.pow(a, &s.0)),
            (GroupImpl::Ec(g), Element::Ec(a)) => Element::Ec(g.scalar_mul(a, &s.0)),
            _ => panic!("element/group family mismatch"),
        }
    }

    /// `g^s` for the fixed generator.
    ///
    /// Uses a per-group comb table (built lazily, shared process-wide):
    /// roughly 4× faster than [`Group::exp`] on an arbitrary base, which
    /// matters because key generation, proof commitments, and one of the
    /// two exponentiations of every encryption are fixed-base.
    pub fn exp_gen(&self, s: &Scalar) -> Element {
        match &self.inner {
            GroupImpl::Dl(g) => Element::Dl(g.pow_gen(&s.0)),
            GroupImpl::Ec(g) => Element::Ec(g.scalar_mul_gen(&s.0)),
        }
    }

    /// Returns `true` if `a` is the identity.
    pub fn is_identity(&self, a: &Element) -> bool {
        match a {
            Element::Dl(v) => v.is_one(),
            Element::Ec(p) => p.is_infinity(),
        }
    }

    /// Fixed-length wire encoding of an element.
    ///
    /// DL elements are big-endian residues padded to the modulus width; EC
    /// points use SEC1 compressed form (`0x02/0x03 || x`, identity = `0x00…`).
    pub fn encode(&self, a: &Element) -> Vec<u8> {
        match (&self.inner, a) {
            (GroupImpl::Dl(g), Element::Dl(a)) => g.encode(a),
            (GroupImpl::Ec(g), Element::Ec(a)) => g.encode(a),
            _ => panic!("element/group family mismatch"),
        }
    }

    /// Decodes an element produced by [`Group::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeElementError`] when the bytes have the wrong length,
    /// encode a value outside the field, or do not lie in the group.
    pub fn decode(&self, bytes: &[u8]) -> Result<Element, DecodeElementError> {
        match &self.inner {
            GroupImpl::Dl(g) => g.decode(bytes).map(Element::Dl),
            GroupImpl::Ec(g) => g.decode(bytes).map(Element::Ec),
        }
    }

    /// Byte length of an encoded element (ciphertext-size accounting for the
    /// network simulation uses `2 ×` this per ElGamal ciphertext).
    pub fn element_len(&self) -> usize {
        match &self.inner {
            GroupImpl::Dl(g) => g.element_len(),
            GroupImpl::Ec(g) => g.element_len(),
        }
    }

    /// A uniformly random scalar in `[0, q)`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        Scalar(random_below(rng, self.order()))
    }

    /// A uniformly random *nonzero* scalar.
    pub fn random_nonzero_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        loop {
            let s = self.random_scalar(rng);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// Embeds an integer as a scalar (reduced mod `q`).
    pub fn scalar_from(&self, v: &BigUint) -> Scalar {
        Scalar(v % self.order())
    }

    /// Embeds a `u64` as a scalar.
    pub fn scalar_from_u64(&self, v: u64) -> Scalar {
        self.scalar_from(&BigUint::from(v))
    }

    /// `a + b mod q`.
    pub fn scalar_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar((&a.0 + &b.0) % self.order())
    }

    /// `a − b mod q`.
    pub fn scalar_sub(&self, a: &Scalar, b: &Scalar) -> Scalar {
        let q = self.order();
        if a.0 >= b.0 {
            Scalar(&a.0 - &b.0)
        } else {
            Scalar(&(&a.0 + q) - &b.0)
        }
    }

    /// `a · b mod q`.
    pub fn scalar_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(&(&a.0 * &b.0) % self.order())
    }

    /// `−a mod q`.
    pub fn scalar_neg(&self, a: &Scalar) -> Scalar {
        if a.0.is_zero() {
            a.clone()
        } else {
            Scalar(self.order() - &a.0)
        }
    }

    /// `a^{-1} mod q`, or `None` for zero.
    pub fn scalar_inv(&self, a: &Scalar) -> Option<Scalar> {
        a.0.modinv(self.order()).map(Scalar)
    }
}

#[cfg(test)]
mod tests {
    use crate::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_arithmetic_mod_q() {
        let g = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let a = g.random_scalar(&mut rng);
        let b = g.random_scalar(&mut rng);
        let sum = g.scalar_add(&a, &b);
        assert_eq!(g.scalar_sub(&sum, &b), a);
        let prod = g.scalar_mul(&a, &b);
        let b_inv = g.scalar_inv(&b).unwrap();
        assert_eq!(g.scalar_mul(&prod, &b_inv), a);
        assert_eq!(g.scalar_add(&a, &g.scalar_neg(&a)), g.scalar_from_u64(0));
    }

    #[test]
    fn fixed_base_matches_generic_exp() {
        for kind in [GroupKind::Ecc160, GroupKind::Ecc256, GroupKind::Dl1024] {
            let g = kind.group();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..5 {
                let s = g.random_scalar(&mut rng);
                assert_eq!(
                    g.exp_gen(&s),
                    g.exp(g.generator(), &s),
                    "comb table disagrees with square-and-multiply on {kind}"
                );
            }
            // Edge scalars.
            assert!(g.is_identity(&g.exp_gen(&g.scalar_from_u64(0))));
            assert_eq!(g.exp_gen(&g.scalar_from_u64(1)), *g.generator());
        }
    }

    #[test]
    #[should_panic(expected = "family mismatch")]
    fn cross_family_op_panics() {
        let dl = GroupKind::Dl1024.group();
        let ec = GroupKind::Ecc160.group();
        let e = ec.generator().clone();
        let d = dl.generator().clone();
        let _ = dl.op(&d, &e);
    }
}
