//! Short-Weierstrass elliptic curves over prime fields, from scratch.
//!
//! Curves `y² = x³ + ax + b` over `F_p` with prime group order `n`
//! (cofactor 1). Points are exposed in affine form; internally, scalar
//! multiplication and addition run in Jacobian coordinates with all field
//! elements kept in Montgomery form, which is what makes the ECC framework
//! instantiation markedly faster than the DL one (the paper's Fig. 2/3).

use crate::cache::ShardedLru;
use crate::traits::DecodeElementError;
use crate::Element;
use ppgr_bigint::{modular, BigUint, MontElem4, Montgomery4};

/// Parameters of a named curve.
#[derive(Clone, Debug)]
pub struct CurveParams {
    /// SECG name, e.g. `"secp256r1"`.
    pub name: &'static str,
    /// Field prime `p`.
    pub p: BigUint,
    /// Curve coefficient `a`.
    pub a: BigUint,
    /// Curve coefficient `b`.
    pub b: BigUint,
    /// Base-point x-coordinate.
    pub gx: BigUint,
    /// Base-point y-coordinate.
    pub gy: BigUint,
    /// Prime group order `n` (cofactor is 1 for all shipped curves).
    pub n: BigUint,
}

fn hex(s: &str) -> BigUint {
    // tidy:allow(panic) — parses vetted compile-time curve constants; exercised by every test
    BigUint::from_hex_str(s).expect("vetted constant")
}

impl CurveParams {
    /// SECG secp160r1 — the paper's "160-bit ECC group" (80-bit security).
    pub fn secp160r1() -> Self {
        CurveParams {
            name: "secp160r1",
            p: hex("ffffffffffffffffffffffffffffffff7fffffff"),
            a: hex("ffffffffffffffffffffffffffffffff7ffffffc"),
            b: hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45"),
            gx: hex("4a96b5688ef573284664698968c38bb913cbfc82"),
            gy: hex("23a628553168947d59dcc912042351377ac5fb32"),
            n: hex("0100000000000000000001f4c8f927aed3ca752257"),
        }
    }

    /// SECG secp224r1 / NIST P-224 (112-bit security).
    pub fn secp224r1() -> Self {
        CurveParams {
            name: "secp224r1",
            p: hex("ffffffffffffffffffffffffffffffff000000000000000000000001"),
            a: hex("fffffffffffffffffffffffffffffffefffffffffffffffffffffffe"),
            b: hex("b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4"),
            gx: hex("b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21"),
            gy: hex("bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34"),
            n: hex("ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d"),
        }
    }

    /// SECG secp256r1 / NIST P-256 (128-bit security).
    pub fn secp256r1() -> Self {
        CurveParams {
            name: "secp256r1",
            p: hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"),
            a: hex("ffffffff00000001000000000000000000000000fffffffffffffffffffffffc"),
            b: hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"),
            gx: hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
            gy: hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
            n: hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"),
        }
    }
}

/// An affine curve point (or the point at infinity).
#[derive(Clone, Eq, PartialEq, Hash)]
pub struct EcPoint {
    /// `None` is the point at infinity (group identity).
    coords: Option<(BigUint, BigUint)>,
}

impl EcPoint {
    /// The point at infinity.
    pub fn infinity() -> Self {
        EcPoint { coords: None }
    }

    /// An affine point; coordinate validity is checked by [`EcGroup`] APIs.
    pub fn affine(x: BigUint, y: BigUint) -> Self {
        EcPoint {
            coords: Some((x, y)),
        }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.coords.is_none()
    }

    /// The affine coordinates, or `None` for infinity.
    pub fn xy(&self) -> Option<(&BigUint, &BigUint)> {
        self.coords.as_ref().map(|(x, y)| (x, y))
    }
}

impl std::fmt::Debug for EcPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.coords {
            None => write!(f, "EcPoint::Infinity"),
            Some((x, y)) => write!(f, "EcPoint(0x{x:x}, 0x{y:x})"),
        }
    }
}

/// A signed-wNAF plan entry: the recoded digits of one scalar plus the
/// index of its base's odd-multiple table (`None` when the term is the
/// identity and contributes nothing).
type WnafPlan = Option<(Vec<i64>, usize)>;

/// A Jacobian point with Montgomery-form coordinates: `(X : Y : Z)`,
/// representing affine `(X/Z², Y/Z³)`; `Z = 0` is infinity.
#[derive(Clone, Debug)]
pub(crate) struct Jacobian {
    pub(crate) x: MontElem4,
    pub(crate) y: MontElem4,
    pub(crate) z: MontElem4,
}

/// An affine point with coordinates still *in* the Montgomery domain
/// (never infinity). Adding one of these to a Jacobian point is a mixed
/// addition — `Z₂ = 1` drops four multiplications and a squaring from the
/// general formula — and a whole batch of wNAF tables can be normalized
/// to this form with a single shared field inversion, so the batch
/// multiplication ladders get mixed-addition pricing without paying an
/// inversion per table entry.
#[derive(Clone)]
struct MontAffine {
    x: MontElem4,
    y: MontElem4,
}

/// A fixed-base comb table for one curve point: `rows[i][d] = (d·16^i)·P`.
///
/// Built once per base with [`EcGroup::build_comb`]; afterwards every
/// scalar multiplication by that base costs one Jacobian addition per four
/// scalar bits and no doublings. Building costs 15 additions per row
/// (≈ 40 rows·15 for a 160-bit order), so a table amortizes after roughly
/// three scalar multiplications.
#[derive(Debug)]
pub struct EcComb {
    rows: Vec<Vec<Jacobian>>,
}

/// A prime-order elliptic-curve group.
#[derive(Debug)]
pub struct EcGroup {
    params: CurveParams,
    fp: Montgomery4,
    /// `a` in Montgomery form.
    a_m: MontElem4,
    /// All shipped curves have `a = p − 3`, enabling the faster doubling
    /// `M = 3(X − Z²)(X + Z²)`.
    a_is_minus3: bool,
    generator: Element,
    element_len: usize,
    /// Comb table for fixed-base scalar multiplication by the generator.
    gen_table: std::sync::OnceLock<EcComb>,
    /// Sharded read-mostly LRU of comb tables for other frequently used
    /// bases (joint public keys); shared process-wide via the group
    /// singleton. Hits take a per-shard read lock only, so concurrent
    /// sessions exponentiating under different joint keys don't serialize.
    comb_cache: ShardedLru<EcPoint, EcComb>,
}

impl EcGroup {
    /// Builds the group for the given curve parameters.
    ///
    /// # Panics
    ///
    /// Panics if the base point does not satisfy the curve equation
    /// (defensive check on the constants).
    pub fn new(params: CurveParams) -> Self {
        let fp = Montgomery4::new(params.p.clone());
        let a_m = fp.enter(&params.a);
        let a_is_minus3 = {
            let three = BigUint::from(3u64);
            params.p.checked_sub(&three).as_ref() == Some(&params.a)
        };
        let element_len = 1 + params.p.bits().div_ceil(8);
        let g = EcGroup {
            generator: Element::Ec(EcPoint::affine(params.gx.clone(), params.gy.clone())),
            params,
            fp,
            a_m,
            a_is_minus3,
            element_len,
            gen_table: std::sync::OnceLock::new(),
            comb_cache: ShardedLru::new(Self::COMB_CACHE_SHARDS, Self::COMB_CACHE_CAP),
        };
        let Element::Ec(base) = &g.generator else {
            // tidy:allow(panic) — the group's own generator is Element::Ec by construction
            unreachable!()
        };
        assert!(g.is_on_curve(base), "base point not on curve");
        g
    }

    /// The curve parameters.
    pub fn params(&self) -> &CurveParams {
        &self.params
    }

    /// The prime group order `n`.
    pub fn order(&self) -> &BigUint {
        &self.params.n
    }

    /// The base point.
    pub fn generator(&self) -> &Element {
        &self.generator
    }

    pub(crate) fn element_len(&self) -> usize {
        self.element_len
    }

    /// Checks the affine curve equation `y² = x³ + ax + b`.
    pub fn is_on_curve(&self, p: &EcPoint) -> bool {
        let Some((x, y)) = p.xy() else { return true };
        if x >= &self.params.p || y >= &self.params.p {
            return false;
        }
        let f = &self.fp;
        let xm = f.enter(x);
        let ym = f.enter(y);
        let lhs = f.msqr(&ym);
        let x3 = f.mmul(&f.msqr(&xm), &xm);
        let ax = f.mmul(&self.a_m, &xm);
        let rhs = f.madd(&f.madd(&x3, &ax), &f.enter(&self.params.b));
        lhs == rhs
    }

    pub(crate) fn to_jacobian(&self, p: &EcPoint) -> Jacobian {
        match p.xy() {
            None => Jacobian {
                x: self.fp.one_elem(),
                y: self.fp.one_elem(),
                z: self.fp.zero_elem(),
            },
            Some((x, y)) => Jacobian {
                x: self.fp.enter(x),
                y: self.fp.enter(y),
                z: self.fp.one_elem(),
            },
        }
    }

    pub(crate) fn jac_infinity(&self) -> Jacobian {
        let f = &self.fp;
        Jacobian {
            x: f.one_elem(),
            y: f.one_elem(),
            z: f.zero_elem(),
        }
    }

    pub(crate) fn to_affine(&self, p: &Jacobian) -> EcPoint {
        let f = &self.fp;
        if f.is_zero_elem(&p.z) {
            return EcPoint::infinity();
        }
        // In-domain Fermat inversion: much faster than a BigUint extended
        // GCD, and it avoids two domain conversions.
        let zi = f.minv(&p.z);
        let zi2 = f.msqr(&zi);
        let zi3 = f.mmul(&zi2, &zi);
        let x = f.leave(&f.mmul(&p.x, &zi2));
        let y = f.leave(&f.mmul(&p.y, &zi3));
        EcPoint::affine(x, y)
    }

    /// Normalizes many Jacobian points with a single field inversion
    /// (Montgomery's batch-inversion trick): three multiplications per
    /// point replace one inversion each.
    pub(crate) fn to_affine_batch(&self, points: &[Jacobian]) -> Vec<EcPoint> {
        let f = &self.fp;
        let finite: Vec<usize> = (0..points.len())
            .filter(|&i| !f.is_zero_elem(&points[i].z))
            .collect();
        let zs: Vec<MontElem4> = finite.iter().map(|&i| points[i].z).collect();
        let z_invs = f.batch_minv(&zs);
        let mut out = vec![EcPoint::infinity(); points.len()];
        for (&i, zi) in finite.iter().zip(&z_invs) {
            let zi2 = f.msqr(zi);
            let zi3 = f.mmul(&zi2, zi);
            let x = f.leave(&f.mmul(&points[i].x, &zi2));
            let y = f.leave(&f.mmul(&points[i].y, &zi3));
            out[i] = EcPoint::affine(x, y);
        }
        out
    }

    /// Jacobian doubling:
    /// `S = 4XY²; M = 3X² + aZ⁴; X' = M² − 2S; Y' = M(S − X') − 8Y⁴; Z' = 2YZ`.
    ///
    /// For `a = p − 3` (all shipped curves), `M = 3(X − Z²)(X + Z²)`, which
    /// trades two squarings and a multiplication for one multiplication.
    pub(crate) fn jac_double(&self, p: &Jacobian) -> Jacobian {
        let f = &self.fp;
        if f.is_zero_elem(&p.z) || f.is_zero_elem(&p.y) {
            return self.jac_infinity();
        }
        let y2 = f.msqr(&p.y);
        let s = f.msmall(&f.mmul(&p.x, &y2), 4);
        let z2 = f.msqr(&p.z);
        let m = if self.a_is_minus3 {
            f.msmall(&f.mmul(&f.msub(&p.x, &z2), &f.madd(&p.x, &z2)), 3)
        } else {
            f.madd(
                &f.msmall(&f.msqr(&p.x), 3),
                &f.mmul(&self.a_m, &f.msqr(&z2)),
            )
        };
        let x3 = f.msub(&f.msqr(&m), &f.mdbl(&s));
        let y4 = f.msqr(&y2);
        let y3 = f.msub(&f.mmul(&m, &f.msub(&s, &x3)), &f.msmall(&y4, 8));
        let z3 = f.mdbl(&f.mmul(&p.y, &p.z));
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub(crate) fn jac_add(&self, p: &Jacobian, q: &Jacobian) -> Jacobian {
        let f = &self.fp;
        if f.is_zero_elem(&p.z) {
            return q.clone();
        }
        if f.is_zero_elem(&q.z) {
            return p.clone();
        }
        let z1z1 = f.msqr(&p.z);
        let z2z2 = f.msqr(&q.z);
        let u1 = f.mmul(&p.x, &z2z2);
        let u2 = f.mmul(&q.x, &z1z1);
        let s1 = f.mmul(&f.mmul(&p.y, &q.z), &z2z2);
        let s2 = f.mmul(&f.mmul(&q.y, &p.z), &z1z1);
        let h = f.msub(&u2, &u1);
        let r = f.msub(&s2, &s1);
        if f.is_zero_elem(&h) {
            if f.is_zero_elem(&r) {
                return self.jac_double(p);
            }
            return Jacobian {
                x: f.one_elem(),
                y: f.one_elem(),
                z: f.zero_elem(),
            };
        }
        let hh = f.msqr(&h);
        let hhh = f.mmul(&h, &hh);
        let v = f.mmul(&u1, &hh);
        let x3 = f.msub(&f.msub(&f.msqr(&r), &hhh), &f.mdbl(&v));
        let y3 = f.msub(&f.mmul(&r, &f.msub(&v, &x3)), &f.mmul(&s1, &hhh));
        let z3 = f.mmul(&f.mmul(&p.z, &q.z), &h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Affine point addition.
    pub fn add(&self, p: &EcPoint, q: &EcPoint) -> EcPoint {
        self.to_affine(&self.jac_add(&self.to_jacobian(p), &self.to_jacobian(q)))
    }

    /// Point negation.
    pub fn neg(&self, p: &EcPoint) -> EcPoint {
        match p.xy() {
            None => EcPoint::infinity(),
            Some((x, y)) => {
                let ny = if y.is_zero() {
                    BigUint::zero()
                } else {
                    &self.params.p - y
                };
                EcPoint::affine(x.clone(), ny)
            }
        }
    }

    /// Builds the `1·P .. 15·P` window table (index 0 is infinity).
    fn window_table(&self, base: &Jacobian) -> Vec<Jacobian> {
        let mut table = Vec::with_capacity(16);
        table.push(self.jac_infinity());
        table.push(base.clone());
        for i in 2..16usize {
            let prev = self.jac_add(&table[i - 1], base);
            table.push(prev);
        }
        table
    }

    /// Core variable-base scalar multiplication; `k` must already be
    /// reduced modulo the group order.
    fn scalar_mul_jac(&self, base: &Jacobian, k: &BigUint) -> Jacobian {
        if k.is_zero() || self.fp.is_zero_elem(&base.z) {
            return self.jac_infinity();
        }
        let bits = k.bits();
        if bits <= 32 {
            // Small scalars (circuit weights, decode probes): plain binary
            // double-and-add beats amortizing a 15-addition window table.
            let mut acc = base.clone();
            for i in (0..bits - 1).rev() {
                acc = self.jac_double(&acc);
                if k.bit(i) {
                    acc = self.jac_add(&acc, base);
                }
            }
            return acc;
        }
        let table = self.window_table(base);
        let mut acc: Option<Jacobian> = None;
        let mut i = bits;
        while i > 0 {
            let take = if i.is_multiple_of(4) { 4 } else { i % 4 };
            let mut window = 0usize;
            for t in 0..take {
                window = window << 1 | k.bit(i - 1 - t) as usize;
            }
            acc = Some(match acc {
                None => table[window].clone(),
                Some(mut a) => {
                    for _ in 0..take {
                        a = self.jac_double(&a);
                    }
                    if window != 0 {
                        a = self.jac_add(&a, &table[window]);
                    }
                    a
                }
            });
            i -= take;
        }
        // tidy:allow(panic) — zero scalars return early above, so the window loop always assigns acc
        acc.expect("nonzero scalar")
    }

    /// Scalar multiplication `k·P` with a 4-bit window.
    pub fn scalar_mul(&self, p: &EcPoint, k: &BigUint) -> EcPoint {
        let k = k % &self.params.n;
        if k.is_zero() || p.is_infinity() {
            return EcPoint::infinity();
        }
        self.to_affine(&self.scalar_mul_jac(&self.to_jacobian(p), &k))
    }

    /// Simultaneous double-base multiplication `k₁·P + k₂·Q` (Shamir's
    /// trick): both scalars share one doubling ladder, so the combined cost
    /// is roughly one scalar multiplication plus one extra table and one
    /// extra addition per window — about two-thirds the cost of two
    /// independent multiplications.
    pub fn scalar_mul_dual(&self, p: &EcPoint, k1: &BigUint, q: &EcPoint, k2: &BigUint) -> EcPoint {
        let k1 = k1 % &self.params.n;
        let k2 = k2 % &self.params.n;
        self.to_affine(&self.dual_mul_jac(p, &k1, q, &k2))
    }

    fn dual_mul_jac(&self, p: &EcPoint, k1: &BigUint, q: &EcPoint, k2: &BigUint) -> Jacobian {
        if k1.is_zero() || p.is_infinity() {
            return self.scalar_mul_jac(&self.to_jacobian(q), k2);
        }
        if k2.is_zero() || q.is_infinity() {
            return self.scalar_mul_jac(&self.to_jacobian(p), k1);
        }
        let table_p = self.window_table(&self.to_jacobian(p));
        let table_q = self.window_table(&self.to_jacobian(q));
        let bits = k1.bits().max(k2.bits());
        let windows = bits.div_ceil(4);
        let mut acc: Option<Jacobian> = None;
        for w in (0..windows).rev() {
            if let Some(a) = acc.as_mut() {
                for _ in 0..4 {
                    *a = self.jac_double(a);
                }
            }
            for (k, table) in [(&k1, &table_p), (&k2, &table_q)] {
                let mut window = 0usize;
                for b in 0..4 {
                    window |= (k.bit(4 * w + b) as usize) << b;
                }
                if window != 0 {
                    acc = Some(match acc {
                        None => table[window].clone(),
                        Some(a) => self.jac_add(&a, &table[window]),
                    });
                }
            }
        }
        acc.unwrap_or_else(|| self.jac_infinity())
    }

    /// Builds a fixed-base comb table for `p`: `rows[i][d] = (d·16^i)·P`.
    pub fn build_comb(&self, p: &EcPoint) -> EcComb {
        let rows = self.params.n.bits().div_ceil(4);
        let inf = self.jac_infinity();
        let mut base = self.to_jacobian(p);
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(16);
            row.push(inf.clone());
            for d in 1..16 {
                let prev = self.jac_add(&row[d - 1], &base);
                row.push(prev);
            }
            base = self.jac_add(&row[15], &base);
            out.push(row);
        }
        EcComb { rows: out }
    }

    fn comb_mul_jac(&self, comb: &EcComb, k: &BigUint) -> Jacobian {
        let k = k % &self.params.n;
        let mut acc = self.jac_infinity();
        for (i, row) in comb.rows.iter().enumerate() {
            let mut window = 0usize;
            for b in 0..4 {
                window |= (k.bit(4 * i + b) as usize) << b;
            }
            if window != 0 {
                acc = self.jac_add(&acc, &row[window]);
            }
        }
        acc
    }

    /// Fixed-base scalar multiplication via a prebuilt comb table: one
    /// Jacobian addition per 4 scalar bits, no doublings.
    pub fn scalar_mul_comb(&self, comb: &EcComb, k: &BigUint) -> EcPoint {
        self.to_affine(&self.comb_mul_jac(comb, k))
    }

    /// Batch fixed-base multiplication: all results share one field
    /// inversion for the final affine conversion. Takes scalar references
    /// so callers holding scalars elsewhere (e.g. inside [`crate::Scalar`])
    /// never clone them just to batch.
    pub fn scalar_mul_comb_batch(&self, comb: &EcComb, ks: &[&BigUint]) -> Vec<EcPoint> {
        let jacs: Vec<Jacobian> = ks.iter().map(|k| self.comb_mul_jac(comb, k)).collect();
        self.to_affine_batch(&jacs)
    }

    /// Batch variable-base multiplication: signed wNAF digits against
    /// batch-normalized [`MontAffine`] tables (mixed additions), all
    /// results sharing one final field inversion. The table normalization
    /// itself shares a second inversion across *every table of the batch*,
    /// which is what lets the ladder use 7M+3S mixed additions instead of
    /// 12M+4S general ones without per-point inversion overhead.
    pub fn scalar_mul_batch(&self, pairs: &[(&EcPoint, &BigUint)]) -> Vec<EcPoint> {
        let mut bases: Vec<Jacobian> = Vec::new();
        let plan: Vec<Option<(Vec<i64>, usize)>> = pairs
            .iter()
            .map(|(p, k)| {
                let k = *k % &self.params.n;
                if k.is_zero() || p.is_infinity() {
                    return None;
                }
                bases.push(self.to_jacobian(p));
                Some((crate::msm::wnaf_digits(&k, 4), bases.len() - 1))
            })
            .collect();
        let tables = self.wnaf_tables(&bases);
        let jacs: Vec<Jacobian> = plan
            .iter()
            .map(|entry| match entry {
                None => self.jac_infinity(),
                Some((digits, t)) => self.wnaf_mul_jac(digits, &tables[*t]),
            })
            .collect();
        self.to_affine_batch(&jacs)
    }

    /// Batch double-base multiplication `k₁·P + k₂·Q` per entry: one
    /// shared doubling ladder per entry (Shamir), signed-wNAF mixed
    /// additions, tables and results each normalized through one batched
    /// field inversion.
    pub fn scalar_mul_dual_batch(
        &self,
        items: &[(&EcPoint, &BigUint, &EcPoint, &BigUint)],
    ) -> Vec<EcPoint> {
        let mut bases: Vec<Jacobian> = Vec::new();
        let plan: Vec<[WnafPlan; 2]> = {
            let mut side = |pt: &EcPoint, k: &BigUint| -> WnafPlan {
                let k = k % &self.params.n;
                if k.is_zero() || pt.is_infinity() {
                    return None;
                }
                bases.push(self.to_jacobian(pt));
                Some((crate::msm::wnaf_digits(&k, 4), bases.len() - 1))
            };
            items
                .iter()
                .map(|(p, k1, q, k2)| [side(p, k1), side(q, k2)])
                .collect()
        };
        let tables = self.wnaf_tables(&bases);
        let jacs: Vec<Jacobian> = plan
            .iter()
            .map(|entry| match entry {
                [None, None] => self.jac_infinity(),
                [Some((d, t)), None] | [None, Some((d, t))] => self.wnaf_mul_jac(d, &tables[*t]),
                [Some((d1, t1)), Some((d2, t2))] => {
                    self.wnaf_dual_mul_jac(d1, &tables[*t1], d2, &tables[*t2])
                }
            })
            .collect();
        self.to_affine_batch(&jacs)
    }

    /// Fused hop batch: for each `(a, k₁, b, k₂)` computes the pair
    /// `(a^{k₁}·b^{k₂}, b^{k₁})` — the shape of a re-randomized partial
    /// decryption, whose new `β = b^{k₁}` reuses both the wNAF recoding of
    /// `k₁` and the odd-multiple table of `b` that the double-base half
    /// already paid for. Versus composing [`EcGroup::scalar_mul_dual_batch`]
    /// with [`EcGroup::scalar_mul_batch`], each entry saves one table build,
    /// one recoding, and a share of two batch inversions.
    pub fn scalar_mul_hop_batch(
        &self,
        items: &[(&EcPoint, &BigUint, &EcPoint, &BigUint)],
    ) -> Vec<(EcPoint, EcPoint)> {
        let recode = |k: &BigUint| {
            let k = k % &self.params.n;
            if k.is_zero() {
                Vec::new()
            } else {
                crate::msm::wnaf_digits(&k, 4)
            }
        };
        let digits: Vec<(Vec<i64>, Vec<i64>)> = items
            .iter()
            .map(|(_, k1, _, k2)| (recode(k1), recode(k2)))
            .collect();
        let with_digits: Vec<(&EcPoint, &[i64], &EcPoint, &[i64])> = items
            .iter()
            .zip(&digits)
            .map(|((a, _, b, _), (d1, d2))| (*a, d1.as_slice(), *b, d2.as_slice()))
            .collect();
        self.scalar_mul_hop_digits_batch(&with_digits)
    }

    /// [`EcGroup::scalar_mul_hop_batch`] over pre-recoded scalars: each
    /// entry is `(a, wnaf(k₁), b, wnaf(k₂))` with empty digit vectors
    /// encoding zero scalars. An offline phase that knows the hop's
    /// randomizers (but not its ciphertexts) can pay the order reductions
    /// and recodings ahead of time and hand the digits in here.
    pub fn scalar_mul_hop_digits_batch(
        &self,
        items: &[(&EcPoint, &[i64], &EcPoint, &[i64])],
    ) -> Vec<(EcPoint, EcPoint)> {
        struct Hop {
            a: Option<usize>,
            b: Option<usize>,
        }
        let mut bases: Vec<Jacobian> = Vec::new();
        let plan: Vec<Hop> = items
            .iter()
            .map(|(a, d1, b, d2)| {
                let a_idx = (!a.is_infinity() && !d1.is_empty()).then(|| {
                    bases.push(self.to_jacobian(a));
                    bases.len() - 1
                });
                let b_idx = (!b.is_infinity() && (!d1.is_empty() || !d2.is_empty())).then(|| {
                    bases.push(self.to_jacobian(b));
                    bases.len() - 1
                });
                Hop { a: a_idx, b: b_idx }
            })
            .collect();
        let tables = self.wnaf_tables(&bases);
        let mut jacs = Vec::with_capacity(items.len() * 2);
        for (hop, (_, d1, _, d2)) in plan.iter().zip(items) {
            jacs.push(match (hop.a, hop.b) {
                (Some(ta), Some(tb)) if !d2.is_empty() => {
                    self.wnaf_dual_mul_jac(d1, &tables[ta], d2, &tables[tb])
                }
                (Some(ta), _) => self.wnaf_mul_jac(d1, &tables[ta]),
                (None, Some(tb)) if !d2.is_empty() => self.wnaf_mul_jac(d2, &tables[tb]),
                _ => self.jac_infinity(),
            });
            jacs.push(match hop.b {
                Some(tb) if !d1.is_empty() => self.wnaf_mul_jac(d1, &tables[tb]),
                _ => self.jac_infinity(),
            });
        }
        let mut pts = self.to_affine_batch(&jacs).into_iter();
        items
            .iter()
            .map(|_| {
                // tidy:allow(panic) — two Jacobians were pushed per item above, so the iterator cannot run dry
                (pts.next().expect("paired"), pts.next().expect("paired"))
            })
            .collect()
    }

    /// Returns (building and caching on first use) the comb table for `p`.
    ///
    /// Backed by a sharded LRU: cache hits take a shard read lock only and
    /// bump the entry's recency, so a hot joint key survives streams of
    /// one-shot bases and concurrent sessions don't serialize on lookups.
    pub fn comb_for(&self, p: &EcPoint) -> std::sync::Arc<EcComb> {
        self.comb_cache.get_or_insert_with(p, || self.build_comb(p))
    }

    /// Hit/miss/eviction counters for the comb-table cache (scrape-ready;
    /// the process-wide group singleton makes these cross-session totals).
    pub fn comb_cache_stats(&self) -> crate::cache::CacheStats {
        self.comb_cache.stats()
    }

    /// Shards of the per-group comb-table cache.
    pub const COMB_CACHE_SHARDS: usize = 4;
    /// Per-shard capacity of the comb-table cache (LRU eviction).
    pub const COMB_CACHE_CAP: usize = 16;

    fn gen_comb(&self) -> &EcComb {
        self.gen_table.get_or_init(|| {
            let Element::Ec(gen) = &self.generator else {
                // tidy:allow(panic) — the group's own generator is Element::Ec by construction
                unreachable!()
            };
            self.build_comb(gen)
        })
    }

    /// Fixed-base scalar multiplication `k·G` via a lazily built comb table.
    pub fn scalar_mul_gen(&self, k: &BigUint) -> EcPoint {
        self.scalar_mul_comb(self.gen_comb(), k)
    }

    /// Batch fixed-base multiplication by the generator.
    pub fn scalar_mul_gen_batch(&self, ks: &[&BigUint]) -> Vec<EcPoint> {
        self.scalar_mul_comb_batch(self.gen_comb(), ks)
    }

    /// Mixed addition `P + Q` (or `P − Q` with `negate_q`) of a Jacobian
    /// point and a normalized [`MontAffine`] point: `Z₂ = 1` reduces the
    /// general 12M+4S addition to 7M+3S. Negating `Q` costs one field
    /// subtraction, which is what makes signed (wNAF) digits free here.
    fn jac_add_mixed(&self, p: &Jacobian, q: &MontAffine, negate_q: bool) -> Jacobian {
        let f = &self.fp;
        let qy = if negate_q {
            f.msub(&f.zero_elem(), &q.y)
        } else {
            q.y
        };
        if f.is_zero_elem(&p.z) {
            return Jacobian {
                x: q.x,
                y: qy,
                z: f.one_elem(),
            };
        }
        let z1z1 = f.msqr(&p.z);
        let u2 = f.mmul(&q.x, &z1z1);
        let s2 = f.mmul(&f.mmul(&qy, &p.z), &z1z1);
        let h = f.msub(&u2, &p.x);
        let r = f.msub(&s2, &p.y);
        if f.is_zero_elem(&h) {
            if f.is_zero_elem(&r) {
                return self.jac_double(p);
            }
            return self.jac_infinity();
        }
        let hh = f.msqr(&h);
        let hhh = f.mmul(&h, &hh);
        let v = f.mmul(&p.x, &hh);
        let x3 = f.msub(&f.msub(&f.msqr(&r), &hhh), &f.mdbl(&v));
        let y3 = f.msub(&f.mmul(&r, &f.msub(&v, &x3)), &f.mmul(&p.y, &hhh));
        let z3 = f.mmul(&p.z, &h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Builds width-4 wNAF odd-multiple tables `{1·P, 3·P, …, 15·P}` for
    /// every base at once, normalized to [`MontAffine`] form with ONE
    /// shared field inversion across all entries of all tables. Bases must
    /// be finite; every entry is then a nonzero multiple `d·P` with
    /// `d < n`, so none is infinity and the batch inversion is total.
    fn wnaf_tables(&self, bases: &[Jacobian]) -> Vec<Vec<MontAffine>> {
        let f = &self.fp;
        let mut jacs: Vec<Jacobian> = Vec::with_capacity(bases.len() * 8);
        for base in bases {
            let twice = self.jac_double(base);
            jacs.push(base.clone());
            for _ in 1..8 {
                let next = self.jac_add(&jacs[jacs.len() - 1], &twice);
                jacs.push(next);
            }
        }
        let zs: Vec<MontElem4> = jacs.iter().map(|p| p.z).collect();
        let z_invs = f.batch_minv(&zs);
        let mut out = Vec::with_capacity(bases.len());
        for b in 0..bases.len() {
            let mut table = Vec::with_capacity(8);
            for i in 0..8 {
                let (p, zi) = (&jacs[b * 8 + i], &z_invs[b * 8 + i]);
                let zi2 = f.msqr(zi);
                let zi3 = f.mmul(&zi2, zi);
                table.push(MontAffine {
                    x: f.mmul(&p.x, &zi2),
                    y: f.mmul(&p.y, &zi3),
                });
            }
            out.push(table);
        }
        out
    }

    /// Replays LSB-first wNAF digits against a normalized odd-multiple
    /// table: doublings on the Jacobian accumulator, mixed additions for
    /// nonzero digits (negative digits negate the table entry for free).
    fn wnaf_mul_jac(&self, digits: &[i64], table: &[MontAffine]) -> Jacobian {
        let mut acc = self.jac_infinity();
        for &d in digits.iter().rev() {
            acc = self.jac_double(&acc);
            if d != 0 {
                acc = self.jac_add_mixed(&acc, &table[d.unsigned_abs() as usize / 2], d < 0);
            }
        }
        acc
    }

    /// Double-base wNAF ladder (Shamir's trick with mixed additions): both
    /// digit strings share one doubling chain, each nonzero digit costs a
    /// mixed addition against its own table.
    fn wnaf_dual_mul_jac(
        &self,
        d1: &[i64],
        t1: &[MontAffine],
        d2: &[i64],
        t2: &[MontAffine],
    ) -> Jacobian {
        let len = d1.len().max(d2.len());
        let mut acc = self.jac_infinity();
        for i in (0..len).rev() {
            acc = self.jac_double(&acc);
            for (d, t) in [(&d1, &t1), (&d2, &t2)] {
                if let Some(&digit) = d.get(i) {
                    if digit != 0 {
                        acc = self.jac_add_mixed(
                            &acc,
                            &t[digit.unsigned_abs() as usize / 2],
                            digit < 0,
                        );
                    }
                }
            }
        }
        acc
    }

    /// Shared-recoding batch multiplication: every point times the *same*
    /// scalar. The scalar's width-4 wNAF digits are recoded once
    /// ([`crate::msm::wnaf_digits`]) and replayed for every point; each
    /// point then needs only its odd-multiple table `{P, 3P, …, 15P}`
    /// (one doubling plus seven additions — signed digits make the
    /// negative half free) and the shared double-and-add schedule. All
    /// results are normalized through one batched field inversion.
    ///
    /// This is the shape of a decryption hop: one key share, many `β`s.
    pub fn scalar_mul_same_batch(&self, points: &[&EcPoint], k: &BigUint) -> Vec<EcPoint> {
        if points.is_empty() {
            return Vec::new();
        }
        let k = k % &self.params.n;
        if k.is_zero() {
            return vec![EcPoint::infinity(); points.len()];
        }
        let digits = crate::msm::wnaf_digits(&k, 4);
        let mut bases: Vec<Jacobian> = Vec::new();
        let idxs: Vec<Option<usize>> = points
            .iter()
            .map(|p| {
                if p.is_infinity() {
                    return None;
                }
                bases.push(self.to_jacobian(p));
                Some(bases.len() - 1)
            })
            .collect();
        let tables = self.wnaf_tables(&bases);
        let jacs: Vec<Jacobian> = idxs
            .iter()
            .map(|t| match t {
                Some(t) => self.wnaf_mul_jac(&digits, &tables[*t]),
                None => self.jac_infinity(),
            })
            .collect();
        self.to_affine_batch(&jacs)
    }

    /// [`EcGroup::scalar_mul_same_batch`] with a fused affine addend:
    /// `out[i] = c[i] + k·p[i]`. The addend lands as one mixed addition on
    /// the Jacobian accumulator *before* the shared normalization, so it
    /// replaces a separate affine addition — and the full field inversion
    /// that affine addition would pay per point — with three field
    /// multiplications. This is the shape of a gathered partial
    /// decryption: `α · β^{−x}` across a whole ciphertext set.
    pub fn scalar_mul_same_mul_batch(
        &self,
        addends: &[&EcPoint],
        points: &[&EcPoint],
        k: &BigUint,
    ) -> Vec<EcPoint> {
        assert_eq!(addends.len(), points.len(), "one addend per point");
        let k = k % &self.params.n;
        let digits = if k.is_zero() {
            Vec::new()
        } else {
            crate::msm::wnaf_digits(&k, 4)
        };
        let mut bases: Vec<Jacobian> = Vec::new();
        let idxs: Vec<Option<usize>> = points
            .iter()
            .map(|p| {
                if digits.is_empty() || p.is_infinity() {
                    return None;
                }
                bases.push(self.to_jacobian(p));
                Some(bases.len() - 1)
            })
            .collect();
        let tables = self.wnaf_tables(&bases);
        let jacs: Vec<Jacobian> = idxs
            .iter()
            .zip(addends)
            .map(|(t, addend)| {
                let acc = match t {
                    Some(t) => self.wnaf_mul_jac(&digits, &tables[*t]),
                    None => self.jac_infinity(),
                };
                match addend.xy() {
                    Some((x, y)) => self.jac_add_mixed(
                        &acc,
                        &MontAffine {
                            x: self.fp.enter(x),
                            y: self.fp.enter(y),
                        },
                        false,
                    ),
                    None => acc,
                }
            })
            .collect();
        self.to_affine_batch(&jacs)
    }

    /// Batch affine addition: every `p + q` is computed in Jacobian form
    /// and all results share one field inversion for the final conversion,
    /// versus one inversion *per pair* when calling [`EcGroup::add`] in a
    /// loop. Homomorphic ciphertext algebra (re-randomization, gate
    /// outputs) is made of exactly these adds.
    pub fn add_batch(&self, pairs: &[(&EcPoint, &EcPoint)]) -> Vec<EcPoint> {
        let jacs: Vec<Jacobian> = pairs
            .iter()
            .map(|(p, q)| self.jac_add(&self.to_jacobian(p), &self.to_jacobian(q)))
            .collect();
        self.to_affine_batch(&jacs)
    }

    /// Running sums (inclusive prefix scan): `out[i] = p₀ + … + pᵢ`. The
    /// accumulator stays in Jacobian form between steps and every prefix
    /// shares one field inversion, versus one inversion per prefix when a
    /// caller chains [`EcGroup::add`]. The comparison circuit's suffix
    /// sums are exactly this shape.
    pub fn add_scan(&self, points: &[&EcPoint]) -> Vec<EcPoint> {
        let mut acc = self.jac_infinity();
        let jacs: Vec<Jacobian> = points
            .iter()
            .map(|p| {
                acc = self.jac_add(&acc, &self.to_jacobian(p));
                acc.clone()
            })
            .collect();
        self.to_affine_batch(&jacs)
    }

    /// SEC1 compressed encoding (`0x02/0x03 || x`); infinity is all zeros.
    pub fn encode(&self, p: &EcPoint) -> Vec<u8> {
        let mut out = vec![0u8; self.element_len];
        let Some((x, y)) = p.xy() else { return out };
        out[0] = if y.is_even() { 0x02 } else { 0x03 };
        let xb = x.to_bytes_be();
        out[self.element_len - xb.len()..].copy_from_slice(&xb);
        out
    }

    /// Decodes a compressed point, recovering `y` by Tonelli–Shanks.
    pub fn decode(&self, bytes: &[u8]) -> Result<EcPoint, DecodeElementError> {
        if bytes.len() != self.element_len {
            return Err(DecodeElementError {
                reason: "wrong length",
            });
        }
        match bytes[0] {
            0x00 => {
                if bytes.iter().all(|&b| b == 0) {
                    Ok(EcPoint::infinity())
                } else {
                    Err(DecodeElementError {
                        reason: "bad infinity encoding",
                    })
                }
            }
            tag @ (0x02 | 0x03) => {
                let x = BigUint::from_bytes_be(&bytes[1..]);
                if x >= self.params.p {
                    return Err(DecodeElementError {
                        reason: "x out of range",
                    });
                }
                // y² = x³ + ax + b
                let f = &self.fp;
                let xm = f.enter(&x);
                let rhs = f.madd(
                    &f.madd(&f.mmul(&f.msqr(&xm), &xm), &f.mmul(&self.a_m, &xm)),
                    &f.enter(&self.params.b),
                );
                let rhs = f.leave(&rhs);
                let y =
                    modular::sqrt_mod_prime(&rhs, &self.params.p).ok_or(DecodeElementError {
                        reason: "x not on curve",
                    })?;
                let want_odd = tag == 0x03;
                let y = if y.is_odd() == want_odd {
                    y
                } else {
                    &self.params.p - &y
                };
                Ok(EcPoint::affine(x, y))
            }
            _ => Err(DecodeElementError {
                reason: "bad tag byte",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups() -> Vec<EcGroup> {
        vec![
            EcGroup::new(CurveParams::secp160r1()),
            EcGroup::new(CurveParams::secp224r1()),
            EcGroup::new(CurveParams::secp256r1()),
        ]
    }

    fn gen_point(g: &EcGroup) -> EcPoint {
        let Element::Ec(p) = g.generator().clone() else {
            unreachable!()
        };
        p
    }

    #[test]
    fn base_points_on_curve() {
        for g in groups() {
            assert!(g.is_on_curve(&gen_point(&g)), "{}", g.params().name);
        }
    }

    #[test]
    fn order_annihilates_generator() {
        for g in groups() {
            let n = g.order().clone();
            let p = g.scalar_mul(&gen_point(&g), &n);
            assert!(p.is_infinity(), "{}", g.params().name);
            // (n-1)·G = -G
            let n1 = n.checked_sub(&BigUint::one()).unwrap();
            assert_eq!(
                g.scalar_mul(&gen_point(&g), &n1),
                g.neg(&gen_point(&g)),
                "{}",
                g.params().name
            );
        }
    }

    #[test]
    fn small_multiples_consistent() {
        for g in groups() {
            let p = gen_point(&g);
            let two_p = g.add(&p, &p);
            assert_eq!(g.scalar_mul(&p, &BigUint::from(2u64)), two_p);
            let three_p = g.add(&two_p, &p);
            assert_eq!(g.scalar_mul(&p, &BigUint::from(3u64)), three_p);
            assert!(g.is_on_curve(&two_p) && g.is_on_curve(&three_p));
            // 5P = 2P + 3P
            assert_eq!(
                g.scalar_mul(&p, &BigUint::from(5u64)),
                g.add(&two_p, &three_p)
            );
        }
    }

    #[test]
    fn addition_identities() {
        let g = EcGroup::new(CurveParams::secp160r1());
        let p = gen_point(&g);
        let inf = EcPoint::infinity();
        assert_eq!(g.add(&p, &inf), p);
        assert_eq!(g.add(&inf, &p), p);
        assert!(g.add(&p, &g.neg(&p)).is_infinity());
        assert!(g.add(&inf, &inf).is_infinity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = EcGroup::new(CurveParams::secp160r1());
        let p = gen_point(&g);
        let a = BigUint::from(123_456_789u64);
        let b = BigUint::from(987_654_321u64);
        let lhs = g.scalar_mul(&p, &(&a + &b));
        let rhs = g.add(&g.scalar_mul(&p, &a), &g.scalar_mul(&p, &b));
        assert_eq!(lhs, rhs);
        // (ab)·P == a·(b·P)
        let ab = g.scalar_mul(&p, &(&a * &b));
        let a_bp = g.scalar_mul(&g.scalar_mul(&p, &b), &a);
        assert_eq!(ab, a_bp);
    }

    #[test]
    fn p256_known_answer_2g() {
        // 2·G on P-256 (public test vector).
        let g = EcGroup::new(CurveParams::secp256r1());
        let two_g = g.scalar_mul(&gen_point(&g), &BigUint::from(2u64));
        let (x, y) = two_g.xy().unwrap();
        assert_eq!(
            format!("{x:x}"),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"
        );
        assert_eq!(
            format!("{y:x}"),
            "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"
        );
    }

    #[test]
    fn a_is_minus3_on_all_shipped_curves() {
        // The fast-doubling path must actually be exercised by the shipped
        // parameter sets.
        for g in groups() {
            assert!(g.a_is_minus3, "{}", g.params().name);
        }
    }

    #[test]
    fn dual_mul_matches_two_single_muls() {
        for g in groups() {
            let p = gen_point(&g);
            let q = g.scalar_mul(&p, &BigUint::from(0xdead_beefu64));
            for (k1, k2) in [
                (0u64, 0u64),
                (0, 5),
                (7, 0),
                (1, 1),
                (123_456_789, 987_654_321),
                (u64::MAX, 3),
            ] {
                let (k1, k2) = (BigUint::from(k1), BigUint::from(k2));
                let expect = g.add(&g.scalar_mul(&p, &k1), &g.scalar_mul(&q, &k2));
                assert_eq!(
                    g.scalar_mul_dual(&p, &k1, &q, &k2),
                    expect,
                    "{} k1={k1:?} k2={k2:?}",
                    g.params().name
                );
            }
        }
    }

    #[test]
    fn comb_matches_scalar_mul() {
        let g = EcGroup::new(CurveParams::secp160r1());
        let p = g.scalar_mul(&gen_point(&g), &BigUint::from(31_337u64));
        let comb = g.build_comb(&p);
        for k in [0u64, 1, 2, 15, 16, 0xffff_ffff, u64::MAX] {
            let k = BigUint::from(k);
            assert_eq!(
                g.scalar_mul_comb(&comb, &k),
                g.scalar_mul(&p, &k),
                "k={k:?}"
            );
        }
        // Scalars at/above the order reduce first.
        let n1 = g.order() + &BigUint::one();
        assert_eq!(g.scalar_mul_comb(&comb, &n1), p);
        assert!(g.scalar_mul_comb(&comb, g.order()).is_infinity());
    }

    #[test]
    fn batch_apis_match_singles() {
        let g = EcGroup::new(CurveParams::secp160r1());
        let p = gen_point(&g);
        let q = g.scalar_mul(&p, &BigUint::from(99u64));
        let ks: Vec<BigUint> = [0u64, 1, 77, 123_456_789]
            .iter()
            .map(|&k| BigUint::from(k))
            .collect();
        let comb = g.build_comb(&q);
        let k_refs: Vec<&BigUint> = ks.iter().collect();
        let batch = g.scalar_mul_comb_batch(&comb, &k_refs);
        for (k, got) in ks.iter().zip(&batch) {
            assert_eq!(got, &g.scalar_mul(&q, k));
        }
        assert_eq!(g.scalar_mul_gen_batch(&k_refs)[2], g.scalar_mul(&p, &ks[2]));
        let same = g.scalar_mul_same_batch(&[&p, &q, &EcPoint::infinity()], &ks[3]);
        assert_eq!(same[0], g.scalar_mul(&p, &ks[3]));
        assert_eq!(same[1], g.scalar_mul(&q, &ks[3]));
        assert!(same[2].is_infinity());
        assert!(g
            .scalar_mul_same_batch(&[&p, &q], &BigUint::zero())
            .iter()
            .all(EcPoint::is_infinity));
        let pairs: Vec<(&EcPoint, &BigUint)> = ks.iter().map(|k| (&q, k)).collect();
        let batch = g.scalar_mul_batch(&pairs);
        for (k, got) in ks.iter().zip(&batch) {
            assert_eq!(got, &g.scalar_mul(&q, k));
        }
        let items = vec![(&p, &ks[2], &q, &ks[3]), (&p, &ks[0], &q, &ks[0])];
        let duals = g.scalar_mul_dual_batch(&items);
        assert_eq!(duals[0], g.scalar_mul_dual(&p, &ks[2], &q, &ks[3]));
        assert!(duals[1].is_infinity());
    }

    #[test]
    fn encode_decode_round_trip() {
        for g in groups() {
            for k in [1u64, 2, 12345, 999_999_999] {
                let p = g.scalar_mul(&gen_point(&g), &BigUint::from(k));
                let enc = g.encode(&p);
                assert_eq!(g.decode(&enc).unwrap(), p, "{} k={k}", g.params().name);
            }
            let inf_enc = g.encode(&EcPoint::infinity());
            assert!(g.decode(&inf_enc).unwrap().is_infinity());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let g = EcGroup::new(CurveParams::secp160r1());
        assert!(g.decode(&[]).is_err());
        let mut bad = g.encode(&gen_point(&g));
        bad[0] = 0x07;
        assert!(g.decode(&bad).is_err());
        // x ≡ p (out of range)
        let mut oob = vec![0x02u8];
        oob.extend_from_slice(&g.params().p.to_bytes_be());
        assert!(g.decode(&oob).is_err());
    }

    #[test]
    fn off_curve_point_detected() {
        let g = EcGroup::new(CurveParams::secp160r1());
        let p = EcPoint::affine(BigUint::from(5u64), BigUint::from(5u64));
        assert!(!g.is_on_curve(&p));
    }
}
