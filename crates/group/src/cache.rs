//! A sharded, read-mostly LRU cache for expensive per-base precomputation
//! (fixed-base comb tables).
//!
//! The previous comb-table cache was a `Mutex<Vec>` FIFO: every lookup —
//! hit or miss — serialized on one lock, and eviction ignored recency, so
//! two concurrent sessions rotating more distinct joint keys than the
//! capacity would evict each other's hot tables on every insert.
//!
//! This cache fixes both:
//!
//! * **Reads don't serialize.** Keys hash to one of several shards, each
//!   behind its own `RwLock`; a hit takes only that shard's *read* lock, so
//!   concurrent sessions exponentiating under different joint keys proceed
//!   without contention.
//! * **Hits bump recency.** Each entry carries an atomic stamp from a
//!   global clock; a hit stores a fresh stamp without upgrading to a write
//!   lock. Eviction (on insert into a full shard) removes the entry with
//!   the *oldest* stamp — true LRU, so a hot table survives a stream of
//!   one-shot keys.
//!
//! Values are handed out as `Arc<V>`, so an evicted table stays alive for
//! whoever is still using it.

use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Entry<K, V> {
    key: K,
    value: Arc<V>,
    /// Last-touch tick from the cache-wide clock (atomic so a read-locked
    /// hit can bump it).
    stamp: AtomicU64,
}

/// Point-in-time hit/miss/eviction counters for a [`ShardedLru`],
/// scrape-ready for a metrics snapshot.
///
/// Counters are monotonically increasing over the cache's lifetime
/// (`entries` excepted — it is the current population). They are updated
/// with relaxed atomics: exact under quiescence, approximate only while
/// racing writers are mid-flight, which is all a scrape needs.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached across all shards.
    pub entries: u64,
}

/// A sharded LRU map from `K` to `Arc<V>` with per-shard capacity bounds.
pub struct ShardedLru<K, V> {
    shards: Vec<RwLock<Vec<Entry<K, V>>>>,
    cap_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> ShardedLru<K, V> {
    /// Creates a cache with `shards` independent shards holding at most
    /// `cap_per_shard` entries each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(cap_per_shard > 0, "need capacity for at least one entry");
        ShardedLru {
            shards: (0..shards).map(|_| RwLock::new(Vec::new())).collect(),
            cap_per_shard,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Current [`CacheStats`] — hit/miss/eviction counters plus the live
    /// entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_for(&self, key: &K) -> &RwLock<Vec<Entry<K, V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, building and inserting it on a
    /// miss. The build runs under the shard's write lock, so concurrent
    /// requests for the same key build it exactly once; requests for keys
    /// in *other* shards are unaffected, and hits anywhere take only a
    /// read lock.
    pub fn get_or_insert_with(&self, key: &K, build: impl FnOnce() -> V) -> Arc<V> {
        let shard = self.shard_for(key);
        {
            let guard = shard.read();
            if let Some(e) = guard.iter().find(|e| &e.key == key) {
                // fetch_max, not store: two hits racing under the read lock
                // can draw ticks in one order and write them in the other —
                // a plain store would let the older tick overwrite the
                // newer one, aging an entry that was just touched (and
                // making it an eviction candidate it should not be).
                e.stamp.fetch_max(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.value.clone();
            }
        }
        let mut guard = shard.write();
        // Another thread may have inserted while we waited for the lock.
        if let Some(e) = guard.iter().find(|e| &e.key == key) {
            e.stamp.fetch_max(self.tick(), Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.value.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(build());
        if guard.len() >= self.cap_per_shard {
            if let Some(oldest) = guard
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(i, _)| i)
            {
                guard.swap_remove(oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        guard.push(Entry {
            key: key.clone(),
            value: value.clone(),
            stamp: AtomicU64::new(self.tick()),
        });
        value
    }

    /// Whether `key` is currently cached (does not bump recency).
    pub fn contains(&self, key: &K) -> bool {
        self.shard_for(key).read().iter().any(|e| &e.key == key)
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("cap_per_shard", &self.cap_per_shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_arc() {
        let cache: ShardedLru<u64, String> = ShardedLru::new(2, 4);
        let a = cache.get_or_insert_with(&7, || "seven".into());
        let b = cache.get_or_insert_with(&7, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_not_oldest_inserted() {
        // Single shard so eviction is deterministic.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(1, 3);
        for k in 0..3 {
            cache.get_or_insert_with(&k, || k * 10);
        }
        // Touch 0 — under FIFO it would still be the first evicted; under
        // LRU the untouched 1 goes instead.
        cache.get_or_insert_with(&0, || unreachable!());
        cache.get_or_insert_with(&3, || 30);
        assert_eq!(cache.len(), 3);
        assert!(cache.contains(&0), "recently hit entry must survive");
        assert!(!cache.contains(&1), "least recently used entry evicted");
        assert!(cache.contains(&2));
        assert!(cache.contains(&3));
    }

    #[test]
    fn rotation_beyond_capacity_keeps_the_hot_key() {
        // The thrash scenario: one hot key plus a stream of one-shot keys
        // larger than capacity. FIFO would evict the hot key every
        // `capacity` inserts; LRU keeps it as long as it stays hot.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(1, 4);
        let mut hot_builds = 0u32;
        for cold in 100..130 {
            cache.get_or_insert_with(&1, || {
                hot_builds += 1;
                11
            });
            cache.get_or_insert_with(&cold, || cold);
        }
        assert_eq!(hot_builds, 1, "hot key must never be rebuilt");
        assert!(cache.contains(&1));
    }

    #[test]
    fn joint_key_churn_at_real_geometry_never_evicts_the_generator() {
        // The comb cache's deployed geometry (see `EcGroup::COMB_CACHE_*`):
        // a long-lived session keeps hitting the generator's table while
        // the keygen-offline pool mints a fresh joint key per stocked
        // session. Far more distinct joint keys than total capacity must
        // not push the generator's table out mid-session.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(
            crate::ec::EcGroup::COMB_CACHE_SHARDS,
            crate::ec::EcGroup::COMB_CACHE_CAP,
        );
        let generator = 0u64;
        let mut generator_builds = 0u32;
        for joint_key in 1..=512u64 {
            cache.get_or_insert_with(&generator, || {
                generator_builds += 1;
                0
            });
            cache.get_or_insert_with(&joint_key, || joint_key);
        }
        assert_eq!(
            generator_builds, 1,
            "generator table must be built exactly once"
        );
        assert!(cache.contains(&generator));
        assert!(
            cache.len()
                <= crate::ec::EcGroup::COMB_CACHE_SHARDS * crate::ec::EcGroup::COMB_CACHE_CAP
        );
    }

    #[test]
    fn shards_bound_capacity_independently() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(4, 2);
        for k in 0..64 {
            cache.get_or_insert_with(&k, || k);
        }
        assert!(cache.len() <= 4 * 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_count_hits_misses_and_evictions() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(1, 2);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.get_or_insert_with(&1, || 1); // miss
        cache.get_or_insert_with(&1, || unreachable!()); // hit
        cache.get_or_insert_with(&2, || 2); // miss
        cache.get_or_insert_with(&3, || 3); // miss + eviction (cap 2)
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn racing_hits_never_regress_a_recency_stamp() {
        // The regression the instrumentation uncovered: two hits racing
        // under the read lock could `store` their ticks out of draw order,
        // leaving the entry's stamp *older* than a hit that already
        // happened. With fetch_max the stamp is monotone: after any storm
        // of concurrent hits on one key, a subsequent one-shot insert must
        // never evict the hot key.
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(1, 2));
        cache.get_or_insert_with(&0, || 0); // the hot key
        cache.get_or_insert_with(&1, || 1); // the fill key
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..500 {
                        cache.get_or_insert_with(&0, || unreachable!());
                    }
                });
            }
        });
        // Insert a new key: the untouched fill key is the LRU entry and
        // must be the one evicted — the hot key's stamp must still
        // dominate despite the racing hits.
        cache.get_or_insert_with(&2, || 2);
        assert!(cache.contains(&0), "hot key evicted: stamp regressed");
    }

    #[test]
    fn concurrent_hits_and_misses_are_safe() {
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(4, 4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = (i + t) % 8;
                        let v = cache.get_or_insert_with(&k, || k * 2);
                        assert_eq!(*v, k * 2);
                    }
                });
            }
        });
        assert!(cache.len() <= 16);
    }
}
