//! DL groups: the quadratic-residue subgroup of a safe prime.
//!
//! For a safe prime `p = 2q + 1`, the quadratic residues form the unique
//! subgroup of prime order `q`, in which DDH is conjectured hard. We use
//! the RFC 3526 "More Modular Exponential Diffie-Hellman groups" at
//! 1024 (RFC 2409 Oakley group 2), 2048 and 3072 bits, with generator
//! `4 = 2²` (a residue, hence a generator of the order-`q` subgroup).

use crate::cache::ShardedLru;
use crate::traits::DecodeElementError;
use crate::Element;
use ppgr_bigint::{modular, BigUint, MontElem, Montgomery};
use std::sync::OnceLock;

/// Named safe-prime parameter sets.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum DlParams {
    /// 1024-bit MODP group (Oakley group 2, RFC 2409).
    Modp1024,
    /// 2048-bit MODP group (RFC 3526 group 14).
    Modp2048,
    /// 3072-bit MODP group (RFC 3526 group 15).
    Modp3072,
}

/// RFC 2409 Second Oakley Group (1024-bit safe prime).
const MODP_1024: &str = "
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
    29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
    EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
    E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE65381
    FFFFFFFF FFFFFFFF";

/// RFC 3526 group 14 (2048-bit safe prime).
const MODP_2048: &str = "
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
    29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
    EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
    E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D
    C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F
    83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D
    670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B
    E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9
    DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510
    15728E5A 8AACAA68 FFFFFFFF FFFFFFFF";

/// RFC 3526 group 15 (3072-bit safe prime).
const MODP_3072: &str = "
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
    29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
    EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
    E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D
    C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F
    83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D
    670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B
    E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9
    DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510
    15728E5A 8AAAC42D AD33170D 04507A33 A85521AB DF1CBA64
    ECFB8504 58DBEF0A 8AEA7157 5D060C7D B3970F85 A6E1E4C7
    ABF5AE8C DB0933D7 1E8C94E0 4A25619D CEE3D226 1AD2EE6B
    F12FFA06 D98A0864 D8760273 3EC86A64 521F2B18 177B200C
    BBE11757 7A615D6C 770988C0 BAD946E2 08E24FA0 74E5AB31
    43DB5BFC E0FD108E 4B82D120 A93AD2CA FFFFFFFF FFFFFFFF";

/// A fixed-base comb table for one subgroup element:
/// `rows[i][d] = a^(d·16^i)` in Montgomery form.
///
/// Built with [`DlGroup::build_comb`]; afterwards every exponentiation by
/// that base costs one Montgomery multiplication per 4 exponent bits and no
/// squarings — roughly a quarter the work of a generic windowed
/// exponentiation. The build cost amortizes after a few exponentiations.
#[derive(Debug)]
pub struct DlComb {
    rows: Vec<Vec<MontElem>>,
}

/// The quadratic-residue subgroup of a safe prime.
#[derive(Debug)]
pub struct DlGroup {
    params: DlParams,
    p: BigUint,
    q: BigUint,
    generator: Element,
    mont: Montgomery,
    element_len: usize,
    /// Comb table for fixed-base exponentiation by the generator.
    gen_table: OnceLock<DlComb>,
    /// Sharded read-mostly LRU of comb tables for other frequently used
    /// bases (joint public keys); shared process-wide via the group
    /// singleton. Hits take a per-shard read lock only, so concurrent
    /// sessions exponentiating under different joint keys don't serialize.
    comb_cache: ShardedLru<BigUint, DlComb>,
}

impl DlGroup {
    /// Builds one of the fixed parameter sets.
    pub fn new(params: DlParams) -> Self {
        let hex = match params {
            DlParams::Modp1024 => MODP_1024,
            DlParams::Modp2048 => MODP_2048,
            DlParams::Modp3072 => MODP_3072,
        };
        // tidy:allow(panic) — parses a vetted compile-time prime constant; exercised by every test
        let p = BigUint::from_hex_str(hex).expect("vetted constant");
        // tidy:allow(panic) — p is a vetted 1024+-bit prime, so p − 1 cannot underflow
        let q = p.checked_sub(&BigUint::one()).expect("p > 1").shr(1);
        let element_len = p.bits().div_ceil(8);
        let mont = Montgomery::new(p.clone());
        DlGroup {
            params,
            p,
            q,
            generator: Element::Dl(BigUint::from(4u64)),
            mont,
            element_len,
            gen_table: OnceLock::new(),
            comb_cache: ShardedLru::new(Self::COMB_CACHE_SHARDS, Self::COMB_CACHE_CAP),
        }
    }

    /// Shards of the per-group comb-table cache.
    pub const COMB_CACHE_SHARDS: usize = 4;
    /// Per-shard capacity of the comb-table cache (LRU eviction).
    pub const COMB_CACHE_CAP: usize = 16;

    /// Returns (building and caching on first use) the comb table for `a`.
    ///
    /// Backed by a sharded LRU: cache hits take a shard read lock only and
    /// bump the entry's recency, so a hot joint key survives streams of
    /// one-shot bases and concurrent lookups don't serialize.
    pub fn comb_for(&self, a: &BigUint) -> std::sync::Arc<DlComb> {
        self.comb_cache.get_or_insert_with(a, || self.build_comb(a))
    }

    /// Hit/miss/eviction counters for the comb-table cache (scrape-ready;
    /// the process-wide group singleton makes these cross-session totals).
    pub fn comb_cache_stats(&self) -> crate::cache::CacheStats {
        self.comb_cache.stats()
    }

    /// Builds a fixed-base comb table for `a` (an element below `p`).
    pub fn build_comb(&self, a: &BigUint) -> DlComb {
        let rows = self.q.bits().div_ceil(4);
        let mut out = Vec::with_capacity(rows);
        let mut base = self.mont.enter(&(a % &self.p));
        for _ in 0..rows {
            let mut row = Vec::with_capacity(16);
            row.push(self.mont.one_elem());
            for d in 1..16 {
                let prev: &MontElem = &row[d - 1];
                row.push(self.mont.mmul(prev, &base));
            }
            // Next row's unit: base^16.
            base = self.mont.mmul(&row[15], &base);
            out.push(row);
        }
        DlComb { rows: out }
    }

    /// Fixed-base exponentiation via a prebuilt comb table: one Montgomery
    /// multiplication per 4 exponent bits, no squarings.
    pub fn pow_comb(&self, comb: &DlComb, e: &BigUint) -> BigUint {
        let e = e % &self.q;
        let mut acc = self.mont.one_elem();
        for (i, row) in comb.rows.iter().enumerate() {
            let mut window = 0usize;
            for k in 0..4 {
                window |= (e.bit(4 * i + k) as usize) << k;
            }
            if window != 0 {
                acc = self.mont.mmul(&acc, &row[window]);
            }
        }
        self.mont.leave(&acc)
    }

    fn gen_comb(&self) -> &DlComb {
        self.gen_table
            .get_or_init(|| self.build_comb(&BigUint::from(4u64)))
    }

    /// Fixed-base exponentiation `g^e` via a lazily built comb table.
    pub(crate) fn pow_gen(&self, e: &BigUint) -> BigUint {
        self.pow_comb(self.gen_comb(), e)
    }

    /// Simultaneous double-base exponentiation `a^ea · b^eb` with one
    /// shared squaring ladder (Shamir's trick) — roughly two-thirds the
    /// cost of two independent exponentiations.
    pub fn pow_dual(&self, a: &BigUint, ea: &BigUint, b: &BigUint, eb: &BigUint) -> BigUint {
        let ea = ea % &self.q;
        let eb = eb % &self.q;
        if ea.is_zero() {
            return self.pow(b, &eb);
        }
        if eb.is_zero() {
            return self.pow(a, &ea);
        }
        let m = &self.mont;
        let build_table = |base: &BigUint| {
            let bm = m.enter(&(base % &self.p));
            let mut table = Vec::with_capacity(16);
            table.push(m.one_elem());
            table.push(bm.clone());
            for i in 2..16usize {
                let prev = m.mmul(&table[i - 1], &bm);
                table.push(prev);
            }
            table
        };
        let table_a = build_table(a);
        let table_b = build_table(b);
        let bits = ea.bits().max(eb.bits());
        let windows = bits.div_ceil(4);
        let mut acc: Option<MontElem> = None;
        for w in (0..windows).rev() {
            if let Some(v) = acc.as_mut() {
                for _ in 0..4 {
                    *v = m.msqr(v);
                }
            }
            for (e, table) in [(&ea, &table_a), (&eb, &table_b)] {
                let mut window = 0usize;
                for k in 0..4 {
                    window |= (e.bit(4 * w + k) as usize) << k;
                }
                if window != 0 {
                    acc = Some(match acc {
                        None => table[window].clone(),
                        Some(v) => m.mmul(&v, &table[window]),
                    });
                }
            }
        }
        m.leave(&acc.unwrap_or_else(|| m.one_elem()))
    }

    /// The named parameter set.
    pub fn params(&self) -> DlParams {
        self.params
    }

    /// The safe-prime modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// The subgroup order `q = (p − 1) / 2`.
    pub fn order(&self) -> &BigUint {
        &self.q
    }

    /// The generator (`4`).
    pub fn generator(&self) -> &Element {
        &self.generator
    }

    pub(crate) fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mont.mul(a, b)
    }

    pub(crate) fn pow(&self, a: &BigUint, e: &BigUint) -> BigUint {
        self.mont.pow(a, e)
    }

    /// The Montgomery context for arithmetic mod `p` (for the in-crate
    /// multi-exponentiation engine, which stays in the Montgomery domain
    /// across all terms).
    pub(crate) fn mont(&self) -> &Montgomery {
        &self.mont
    }

    /// Shared-recoding batch exponentiation: every base raised to the
    /// *same* exponent. The exponent is reduced mod `q` once, its window
    /// digits are recoded once ([`Montgomery::mpow_many`]), and the whole
    /// batch stays in the Montgomery domain.
    pub(crate) fn pow_same_batch(&self, bases: &[&BigUint], e: &BigUint) -> Vec<BigUint> {
        let e = e % &self.q;
        let ms: Vec<_> = bases
            .iter()
            .map(|b| self.mont.enter(&(*b % &self.p)))
            .collect();
        self.mont
            .mpow_many(&ms, &e)
            .iter()
            .map(|m| self.mont.leave(m))
            .collect()
    }

    pub(crate) fn inv(&self, a: &BigUint) -> BigUint {
        // Fermat inversion on Montgomery limbs (p is prime): considerably
        // faster than a BigUint extended GCD.
        let a = a % &self.p;
        assert!(!a.is_zero(), "group elements are units");
        self.mont.leave(&self.mont.minv(&self.mont.enter(&a)))
    }

    pub(crate) fn element_len(&self) -> usize {
        self.element_len
    }

    pub(crate) fn encode(&self, a: &BigUint) -> Vec<u8> {
        let bytes = a.to_bytes_be();
        let mut out = vec![0u8; self.element_len - bytes.len()];
        out.extend_from_slice(&bytes);
        out
    }

    pub(crate) fn decode(&self, bytes: &[u8]) -> Result<BigUint, DecodeElementError> {
        if bytes.len() != self.element_len {
            return Err(DecodeElementError {
                reason: "wrong length",
            });
        }
        let v = BigUint::from_bytes_be(bytes);
        if v.is_zero() || v >= self.p {
            return Err(DecodeElementError {
                reason: "out of range",
            });
        }
        if modular::jacobi(&v, &self.p) != 1 {
            return Err(DecodeElementError {
                reason: "not a quadratic residue",
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_bigint::prime::is_probable_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modp1024_is_safe_prime() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = DlGroup::new(DlParams::Modp1024);
        assert_eq!(g.modulus().bits(), 1024);
        assert!(is_probable_prime(g.modulus(), 8, &mut rng));
        assert!(is_probable_prime(g.order(), 8, &mut rng));
    }

    #[test]
    fn parameter_sizes() {
        assert_eq!(DlGroup::new(DlParams::Modp2048).modulus().bits(), 2048);
        assert_eq!(DlGroup::new(DlParams::Modp3072).modulus().bits(), 3072);
        assert_eq!(DlGroup::new(DlParams::Modp1024).element_len(), 128);
    }

    #[test]
    fn generator_has_order_q() {
        let g = DlGroup::new(DlParams::Modp1024);
        let Element::Dl(gen) = g.generator().clone() else {
            unreachable!()
        };
        // g^q = 1 and g ≠ 1 → order exactly q (q prime).
        assert!(g.pow(&gen, g.order()).is_one());
        assert!(!gen.is_one());
    }

    #[test]
    fn generator_is_residue() {
        let g = DlGroup::new(DlParams::Modp1024);
        assert_eq!(modular::jacobi(&BigUint::from(4u64), g.modulus()), 1);
    }

    #[test]
    fn pow_dual_matches_two_pows() {
        let g = DlGroup::new(DlParams::Modp1024);
        let a = g.pow(&BigUint::from(4u64), &BigUint::from(123u64));
        let b = g.pow(&BigUint::from(4u64), &BigUint::from(45_678u64));
        for (ea, eb) in [
            (0u64, 0u64),
            (0, 9),
            (9, 0),
            (1, 1),
            (123_456_789, 987_654_321),
        ] {
            let (ea, eb) = (BigUint::from(ea), BigUint::from(eb));
            let expect = g.mul(&g.pow(&a, &ea), &g.pow(&b, &eb));
            assert_eq!(g.pow_dual(&a, &ea, &b, &eb), expect, "ea={ea:?} eb={eb:?}");
        }
    }

    #[test]
    fn comb_matches_pow() {
        let g = DlGroup::new(DlParams::Modp1024);
        let a = g.pow(&BigUint::from(4u64), &BigUint::from(777u64));
        let comb = g.build_comb(&a);
        for e in [0u64, 1, 15, 16, 123_456_789] {
            let e = BigUint::from(e);
            assert_eq!(g.pow_comb(&comb, &e), g.pow(&a, &e), "e={e:?}");
        }
        // Exponents reduce mod q: a^(q+1) = a.
        let q1 = g.order() + &BigUint::one();
        assert_eq!(g.pow_comb(&comb, &q1), a);
    }

    #[test]
    fn inv_matches_fermat() {
        let g = DlGroup::new(DlParams::Modp1024);
        let a = g.pow(&BigUint::from(4u64), &BigUint::from(31_337u64));
        assert!(g.mul(&a, &g.inv(&a)).is_one());
    }

    #[test]
    fn encode_decode_round_trip() {
        let g = DlGroup::new(DlParams::Modp1024);
        let e = g.pow(&BigUint::from(4u64), &BigUint::from(123_456u64));
        let enc = g.encode(&e);
        assert_eq!(enc.len(), 128);
        assert_eq!(g.decode(&enc).unwrap(), e);
    }

    #[test]
    fn decode_rejects_non_residue_and_out_of_range() {
        let g = DlGroup::new(DlParams::Modp1024);
        // 2 is a *non*-residue mod a safe prime p ≡ 7 (mod 8)? For MODP
        // primes p ≡ 7 (mod 8) would make 2 a residue; test with a known
        // non-residue instead: p - 1 (= -1) is a non-residue since q is odd.
        let minus_one = g.modulus().checked_sub(&BigUint::one()).unwrap();
        assert!(g.decode(&g.encode(&minus_one)).is_err());
        assert!(g.decode(&[0u8; 128]).is_err());
        assert!(g.decode(&[1u8; 5]).is_err());
    }
}
