//! Exponent scalars modulo the group order `q`.

use ppgr_bigint::{BigUint, Wipe};
use std::fmt;

/// An exponent in `Z_q`, where `q` is the order of the enclosing [`Group`].
///
/// `Scalar`s are created and combined through [`Group`] methods (which know
/// `q`); the type itself is a thin, always-reduced wrapper.
///
/// [`Group`]: crate::Group
#[derive(Clone, Eq, PartialEq, Hash)]
pub struct Scalar(pub(crate) BigUint);

impl Scalar {
    /// The canonical representative in `[0, q)`.
    pub fn value(&self) -> &BigUint {
        &self.0
    }

    /// Returns `true` for the zero scalar.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Constant-time equality: reads every limb of both scalars before
    /// answering (see `ppgr_bigint::ct`). Use this instead of `==` when
    /// either operand is secret (key shares, Schnorr witnesses, masks).
    pub fn ct_eq(&self, other: &Scalar) -> bool {
        ppgr_bigint::ct_eq_limbs(self.0.limbs(), other.0.limbs())
    }
}

impl Wipe for Scalar {
    fn wipe(&mut self) {
        self.0.wipe_limbs();
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar(0x{:x})", self.0)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
