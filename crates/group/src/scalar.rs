//! Exponent scalars modulo the group order `q`.

use ppgr_bigint::BigUint;
use std::fmt;

/// An exponent in `Z_q`, where `q` is the order of the enclosing [`Group`].
///
/// `Scalar`s are created and combined through [`Group`] methods (which know
/// `q`); the type itself is a thin, always-reduced wrapper.
///
/// [`Group`]: crate::Group
#[derive(Clone, Eq, PartialEq, Hash)]
pub struct Scalar(pub(crate) BigUint);

impl Scalar {
    /// The canonical representative in `[0, q)`.
    pub fn value(&self) -> &BigUint {
        &self.0
    }

    /// Returns `true` for the zero scalar.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar(0x{:x})", self.0)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
