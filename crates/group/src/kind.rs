//! Named group instantiations and NIST security-level equivalences.

use crate::dl::{DlGroup, DlParams};
use crate::ec::{CurveParams, EcGroup};
use crate::traits::{Group, GroupImpl};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The six concrete groups the paper's evaluation uses.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum GroupKind {
    /// 1024-bit safe-prime DL group (80-bit security).
    Dl1024,
    /// 2048-bit safe-prime DL group (112-bit security).
    Dl2048,
    /// 3072-bit safe-prime DL group (128-bit security).
    Dl3072,
    /// secp160r1 (80-bit security) — the paper's default ECC group.
    Ecc160,
    /// secp224r1 (112-bit security).
    Ecc224,
    /// secp256r1 (128-bit security).
    Ecc256,
}

impl GroupKind {
    /// Returns (and caches) the group instance.
    ///
    /// Instances are process-wide singletons: the Montgomery contexts and
    /// curve tables are shared by every protocol run.
    pub fn group(self) -> Group {
        static CACHE: OnceLock<[OnceLock<Group>; 6]> = OnceLock::new();
        let cache = CACHE.get_or_init(Default::default);
        cache[self.index()]
            .get_or_init(|| match self {
                GroupKind::Dl1024 => Group {
                    kind: self,
                    inner: GroupImpl::Dl(Arc::new(DlGroup::new(DlParams::Modp1024))),
                },
                GroupKind::Dl2048 => Group {
                    kind: self,
                    inner: GroupImpl::Dl(Arc::new(DlGroup::new(DlParams::Modp2048))),
                },
                GroupKind::Dl3072 => Group {
                    kind: self,
                    inner: GroupImpl::Dl(Arc::new(DlGroup::new(DlParams::Modp3072))),
                },
                GroupKind::Ecc160 => Group {
                    kind: self,
                    inner: GroupImpl::Ec(Arc::new(EcGroup::new(CurveParams::secp160r1()))),
                },
                GroupKind::Ecc224 => Group {
                    kind: self,
                    inner: GroupImpl::Ec(Arc::new(EcGroup::new(CurveParams::secp224r1()))),
                },
                GroupKind::Ecc256 => Group {
                    kind: self,
                    inner: GroupImpl::Ec(Arc::new(EcGroup::new(CurveParams::secp256r1()))),
                },
            })
            .clone()
    }

    fn index(self) -> usize {
        match self {
            GroupKind::Dl1024 => 0,
            GroupKind::Dl2048 => 1,
            GroupKind::Dl3072 => 2,
            GroupKind::Ecc160 => 3,
            GroupKind::Ecc224 => 4,
            GroupKind::Ecc256 => 5,
        }
    }

    /// Returns `true` for the DL family.
    pub fn is_dl(self) -> bool {
        matches!(
            self,
            GroupKind::Dl1024 | GroupKind::Dl2048 | GroupKind::Dl3072
        )
    }

    /// The equivalent symmetric security level per NIST SP 800-57.
    pub fn security_level(self) -> SecurityLevel {
        match self {
            GroupKind::Dl1024 | GroupKind::Ecc160 => SecurityLevel::Bits80,
            GroupKind::Dl2048 | GroupKind::Ecc224 => SecurityLevel::Bits112,
            GroupKind::Dl3072 | GroupKind::Ecc256 => SecurityLevel::Bits128,
        }
    }

    /// All kinds, in evaluation order.
    pub fn all() -> [GroupKind; 6] {
        [
            GroupKind::Dl1024,
            GroupKind::Dl2048,
            GroupKind::Dl3072,
            GroupKind::Ecc160,
            GroupKind::Ecc224,
            GroupKind::Ecc256,
        ]
    }
}

impl fmt::Display for GroupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GroupKind::Dl1024 => "DL-1024",
            GroupKind::Dl2048 => "DL-2048",
            GroupKind::Dl3072 => "DL-3072",
            GroupKind::Ecc160 => "ECC-160",
            GroupKind::Ecc224 => "ECC-224",
            GroupKind::Ecc256 => "ECC-256",
        };
        f.write_str(s)
    }
}

/// NIST-equivalent symmetric security levels (the x-axis of Fig. 3(a)).
#[derive(Clone, Copy, Debug, Eq, PartialEq, Ord, PartialOrd, Hash)]
pub enum SecurityLevel {
    /// 80-bit symmetric ≈ DL-1024 ≈ ECC-160.
    Bits80,
    /// 112-bit symmetric ≈ DL-2048 ≈ ECC-224.
    Bits112,
    /// 128-bit symmetric ≈ DL-3072 ≈ ECC-256.
    Bits128,
}

impl SecurityLevel {
    /// The DL-family instantiation at this level.
    pub fn dl(self) -> GroupKind {
        match self {
            SecurityLevel::Bits80 => GroupKind::Dl1024,
            SecurityLevel::Bits112 => GroupKind::Dl2048,
            SecurityLevel::Bits128 => GroupKind::Dl3072,
        }
    }

    /// The ECC-family instantiation at this level.
    pub fn ecc(self) -> GroupKind {
        match self {
            SecurityLevel::Bits80 => GroupKind::Ecc160,
            SecurityLevel::Bits112 => GroupKind::Ecc224,
            SecurityLevel::Bits128 => GroupKind::Ecc256,
        }
    }

    /// Symmetric-equivalent bits.
    pub fn bits(self) -> u32 {
        match self {
            SecurityLevel::Bits80 => 80,
            SecurityLevel::Bits112 => 112,
            SecurityLevel::Bits128 => 128,
        }
    }

    /// All levels in ascending order.
    pub fn all() -> [SecurityLevel; 3] {
        [
            SecurityLevel::Bits80,
            SecurityLevel::Bits112,
            SecurityLevel::Bits128,
        ]
    }
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_instances_are_shared() {
        let a = GroupKind::Ecc160.group();
        let b = GroupKind::Ecc160.group();
        assert_eq!(a.order(), b.order());
        assert_eq!(a.kind(), b.kind());
    }

    #[test]
    fn security_level_map_is_consistent() {
        for level in SecurityLevel::all() {
            assert_eq!(level.dl().security_level(), level);
            assert_eq!(level.ecc().security_level(), level);
            assert!(level.dl().is_dl());
            assert!(!level.ecc().is_dl());
        }
    }

    #[test]
    fn element_sizes_ecc_much_smaller_than_dl() {
        // The Fig. 3(b) bandwidth argument: ECC ciphertexts are far smaller.
        let dl = GroupKind::Dl1024.group();
        let ec = GroupKind::Ecc160.group();
        assert_eq!(dl.element_len(), 128);
        assert_eq!(ec.element_len(), 21);
    }

    #[test]
    fn display_names() {
        assert_eq!(GroupKind::Dl2048.to_string(), "DL-2048");
        assert_eq!(SecurityLevel::Bits112.to_string(), "112-bit");
    }
}
