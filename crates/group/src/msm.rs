//! Multi-scalar multiplication: one engine, two backends.
//!
//! Computes `Π bᵢ^{kᵢ}` (multiplicative notation; `Σ kᵢ·Pᵢ` on curves) in
//! a single pass instead of one exponentiation per term. Two classical
//! algorithms cover the input-size spectrum:
//!
//! * **Straus interleaving** for small batches: a 16-entry 4-bit window
//!   table per base, all bases sharing one doubling ladder. Cost is about
//!   `15n` table additions plus `b` doublings plus one addition per
//!   nonzero window per base (`b` = scalar bits, `n` = terms).
//!
//! * **Pippenger bucket aggregation** for large batches: per `c`-bit
//!   window, every base is added into the bucket of its digit, and the
//!   `2^c − 1` buckets are collapsed with the running-sum trick (two
//!   additions per bucket). Cost is about `⌈b/c⌉·(n + 2^{c+1})` additions
//!   plus `b` doublings — the per-term cost shrinks toward `⌈b/c⌉`
//!   additions as `n` grows.
//!
//! The engine picks the algorithm (and Pippenger's window width `c`) by
//! evaluating both cost models for the actual term count and scalar
//! width and taking the cheapest — no hard-coded crossover tables.
//!
//! Both group families drive the same generic core: the EC family
//! accumulates Jacobian buckets and normalizes once through the batched
//! single-inversion affine conversion; the DL family accumulates
//! Montgomery residues and leaves the domain once at the end.

use crate::dl::DlGroup;
use crate::ec::{EcGroup, EcPoint};
use ppgr_bigint::BigUint;

/// The accumulator operations one family exposes to the generic engine.
trait MsmOps {
    type Point: Clone;
    fn identity(&self) -> Self::Point;
    fn combine(&self, a: &Self::Point, b: &Self::Point) -> Self::Point;
    fn double(&self, a: &Self::Point) -> Self::Point;
}

struct EcMsm<'a>(&'a EcGroup);

impl MsmOps for EcMsm<'_> {
    type Point = crate::ec::Jacobian;

    fn identity(&self) -> Self::Point {
        self.0.jac_infinity()
    }

    fn combine(&self, a: &Self::Point, b: &Self::Point) -> Self::Point {
        self.0.jac_add(a, b)
    }

    fn double(&self, a: &Self::Point) -> Self::Point {
        self.0.jac_double(a)
    }
}

struct DlMsm<'a>(&'a DlGroup);

impl MsmOps for DlMsm<'_> {
    type Point = ppgr_bigint::MontElem;

    fn identity(&self) -> Self::Point {
        self.0.mont().one_elem()
    }

    fn combine(&self, a: &Self::Point, b: &Self::Point) -> Self::Point {
        self.0.mont().mmul(a, b)
    }

    fn double(&self, a: &Self::Point) -> Self::Point {
        self.0.mont().msqr(a)
    }
}

/// Which algorithm (and window width) to run for a given input shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Plan {
    Straus,
    Pippenger { c: usize },
}

/// Straus cost model in group operations: per-base table build (15 adds),
/// the shared doubling ladder, and one table addition per 4-bit window
/// per base (bounding the nonzero-window fraction by 1 keeps the choice
/// deterministic and slightly favors Pippenger at the margin).
fn straus_cost(n: usize, bits: usize) -> usize {
    15 * n + bits + bits.div_ceil(4) * n
}

/// Pippenger cost model for window width `c`: one bucket insertion per
/// window per base, two additions per bucket for the running-sum
/// aggregation, and the shared doubling ladder.
fn pippenger_cost(n: usize, bits: usize, c: usize) -> usize {
    bits.div_ceil(c) * (n + 2 * ((1usize << c) - 1)) + bits
}

/// Auto-selects the algorithm and window width from the input count and
/// scalar bit-length by minimizing the two cost models.
pub(crate) fn plan(n: usize, bits: usize) -> Plan {
    let mut best = Plan::Straus;
    let mut best_cost = straus_cost(n, bits);
    for c in 2..=13 {
        let cost = pippenger_cost(n, bits, c);
        if cost < best_cost {
            best_cost = cost;
            best = Plan::Pippenger { c };
        }
    }
    best
}

/// Width-`w` non-adjacent form: LSB-first signed digits, each either zero
/// or odd in `±{1, 3, …, 2^w − 1}`, at most one nonzero digit in any `w`
/// consecutive positions. Shared by the same-scalar batch paths, which
/// recode once and replay the digits for every base.
pub(crate) fn wnaf_digits(k: &BigUint, w: u32) -> Vec<i64> {
    // Recoding runs twice per hop ciphertext, so it works on a flat limb
    // copy with word-level window extraction instead of per-bit `BigUint`
    // arithmetic (which allocates on every subtraction/shift).
    let src = k.limbs();
    let mut limbs = Vec::with_capacity(src.len() + 1);
    limbs.extend_from_slice(src);
    // Headroom: a negative digit adds 2^{w+1} back at the current position,
    // whose carry can run one limb past the original top.
    limbs.push(0);
    let modulus = 1u64 << (w + 1);
    let mask = modulus - 1;
    let half = 1u64 << w;
    let wu = w as usize;
    let mut digits = Vec::with_capacity(64 * src.len() + 1);
    let mut pos = 0usize;
    let mut top = limbs.len(); // exclusive index of the highest live limb
    loop {
        while top > 0 && limbs[top - 1] == 0 {
            top -= 1;
        }
        if pos >= 64 * top {
            break;
        }
        let li = pos / 64;
        let off = pos % 64;
        if (limbs[li] >> off) & 1 == 0 {
            digits.push(0);
            pos += 1;
            continue;
        }
        // Lowest w+1 bits at `pos` as an unsigned value.
        let mut window = limbs[li] >> off;
        if off > 0 && li + 1 < limbs.len() {
            window |= limbs[li + 1] << (64 - off);
        }
        let low = window & mask;
        // Clear bits pos..=pos+w (both digit signs zero them).
        limbs[li] &= !(mask << off);
        if off + wu + 1 > 64 && li + 1 < limbs.len() {
            limbs[li + 1] &= !(mask >> (64 - off));
        }
        if low >= half {
            // Negative digit: add its magnitude back so the borrow
            // propagates as a carry (2^{w+1} at the current position).
            digits.push(low as i64 - modulus as i64);
            let cpos = pos + wu + 1;
            let mut ci = cpos / 64;
            let mut add = 1u64 << (cpos % 64);
            loop {
                let (v, carried) = limbs[ci].overflowing_add(add);
                limbs[ci] = v;
                if !carried {
                    break;
                }
                ci += 1;
                add = 1;
            }
            top = top.max(ci + 1);
        } else {
            digits.push(low as i64);
        }
        pos += 1;
    }
    digits
}

/// The generic engine: dispatches on [`plan`] and returns the family's
/// internal accumulator (Jacobian / Montgomery residue) so the caller
/// controls the final (possibly batched) normalization.
fn msm<G: MsmOps>(g: &G, bases: &[G::Point], scalars: &[&BigUint]) -> G::Point {
    debug_assert_eq!(bases.len(), scalars.len());
    let bits = scalars.iter().map(|s| s.bits()).max().unwrap_or(0);
    if bases.is_empty() || bits == 0 {
        return g.identity();
    }
    match plan(bases.len(), bits) {
        Plan::Straus => straus(g, bases, scalars, bits),
        Plan::Pippenger { c } => pippenger(g, bases, scalars, bits, c),
    }
}

fn straus<G: MsmOps>(g: &G, bases: &[G::Point], scalars: &[&BigUint], bits: usize) -> G::Point {
    // Per-base window tables: tables[i][d] = bᵢ^d for d in 0..16.
    let tables: Vec<Vec<G::Point>> = bases
        .iter()
        .map(|p| {
            let mut t = Vec::with_capacity(16);
            t.push(g.identity());
            t.push(p.clone());
            for d in 2..16 {
                let next = g.combine(&t[d - 1], p);
                t.push(next);
            }
            t
        })
        .collect();
    let windows = bits.div_ceil(4);
    let mut acc: Option<G::Point> = None;
    for w in (0..windows).rev() {
        if let Some(a) = acc.as_mut() {
            for _ in 0..4 {
                *a = g.double(a);
            }
        }
        for (table, k) in tables.iter().zip(scalars) {
            let mut window = 0usize;
            for b in 0..4 {
                window |= (k.bit(4 * w + b) as usize) << b;
            }
            if window != 0 {
                acc = Some(match acc {
                    None => table[window].clone(),
                    Some(a) => g.combine(&a, &table[window]),
                });
            }
        }
    }
    acc.unwrap_or_else(|| g.identity())
}

fn pippenger<G: MsmOps>(
    g: &G,
    bases: &[G::Point],
    scalars: &[&BigUint],
    bits: usize,
    c: usize,
) -> G::Point {
    let windows = bits.div_ceil(c);
    let mut buckets: Vec<Option<G::Point>> = vec![None; (1 << c) - 1];
    let mut acc: Option<G::Point> = None;
    for w in (0..windows).rev() {
        if let Some(a) = acc.as_mut() {
            for _ in 0..c {
                *a = g.double(a);
            }
        }
        for b in buckets.iter_mut() {
            *b = None;
        }
        for (p, k) in bases.iter().zip(scalars) {
            let mut d = 0usize;
            for t in 0..c {
                d |= (k.bit(c * w + t) as usize) << t;
            }
            if d != 0 {
                let slot = &mut buckets[d - 1];
                *slot = Some(match slot.take() {
                    None => p.clone(),
                    Some(cur) => g.combine(&cur, p),
                });
            }
        }
        // Running-sum aggregation: scanning buckets from the highest digit
        // down, `running` holds Σ_{d' ≥ d} bucket_{d'} and `sum` collects
        // Σ d·bucket_d — two additions per occupied bucket, none for the
        // empty ones.
        let mut running: Option<G::Point> = None;
        let mut sum: Option<G::Point> = None;
        for b in buckets.iter().rev() {
            if let Some(p) = b {
                running = Some(match running.take() {
                    None => p.clone(),
                    Some(r) => g.combine(&r, p),
                });
            }
            if let Some(r) = &running {
                sum = Some(match sum.take() {
                    None => r.clone(),
                    Some(s) => g.combine(&s, r),
                });
            }
        }
        if let Some(s) = sum {
            acc = Some(match acc {
                None => s,
                Some(a) => g.combine(&a, &s),
            });
        }
    }
    acc.unwrap_or_else(|| g.identity())
}

/// EC entry point: buckets accumulate in Jacobian coordinates; the single
/// result is normalized through the Fermat-inversion affine conversion.
pub(crate) fn msm_ec(g: &EcGroup, pairs: &[(&EcPoint, &BigUint)]) -> EcPoint {
    let bases: Vec<_> = pairs.iter().map(|(p, _)| g.to_jacobian(p)).collect();
    let scalars: Vec<&BigUint> = pairs.iter().map(|&(_, k)| k).collect();
    g.to_affine(&msm(&EcMsm(g), &bases, &scalars))
}

/// DL entry point: the whole evaluation stays in the Montgomery domain;
/// one `enter` per base, one `leave` for the result.
pub(crate) fn msm_dl(g: &DlGroup, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
    let mont = g.mont();
    let bases: Vec<_> = pairs
        .iter()
        .map(|(b, _)| mont.enter(&(*b % g.modulus())))
        .collect();
    let scalars: Vec<&BigUint> = pairs.iter().map(|&(_, k)| k).collect();
    mont.leave(&msm(&DlMsm(g), &bases, &scalars))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_prefers_straus_for_tiny_inputs_and_pippenger_for_large() {
        assert_eq!(plan(1, 160), Plan::Straus);
        assert_eq!(plan(2, 160), Plan::Straus);
        let Plan::Pippenger { c } = plan(512, 160) else {
            panic!("512-term MSM should bucket-aggregate");
        };
        assert!((4..=13).contains(&c), "c={c}");
        // Wider scalars justify wider windows at the same term count.
        let cost_at = |n: usize, bits: usize| match plan(n, bits) {
            Plan::Straus => 0,
            Plan::Pippenger { c } => c,
        };
        assert!(cost_at(4096, 1024) >= cost_at(4096, 160));
    }

    #[test]
    fn wnaf_digits_reconstruct_scalar() {
        for v in [0u64, 1, 2, 3, 15, 16, 31, 170, 0xdead_beef, u64::MAX] {
            let digits = wnaf_digits(&BigUint::from(v), 4);
            let mut acc: i128 = 0;
            for (i, &d) in digits.iter().enumerate() {
                acc += (d as i128) << i;
                assert!(d == 0 || (d % 2 != 0 && d.unsigned_abs() < 16), "d={d}");
            }
            assert_eq!(acc, v as i128, "v={v}");
            // Non-adjacency: no two nonzero digits within w positions.
            for pair in digits.windows(4) {
                assert!(pair.iter().filter(|&&d| d != 0).count() <= 1, "v={v}");
            }
        }
    }
}
