//! Prime-order groups in which DDH is assumed hard.
//!
//! The framework of the paper is instantiated over two families (Sec. IV-B):
//!
//! * **DL** — the subgroup of quadratic residues modulo a safe prime.
//!   We ship the RFC 3526 MODP safe primes at 1024/2048/3072 bits
//!   ([`DlGroup`]).
//! * **ECC** — prime-order elliptic-curve groups. We implement the SECG
//!   short-Weierstrass curves secp160r1 / secp224r1 / secp256r1 from
//!   scratch ([`EcGroup`]), matching the paper's 160-bit ECC setting and
//!   the NIST security-level equivalences used in Fig. 3(a).
//!
//! [`Group`] is the object all protocol crates program against; elements
//! are opaque [`Element`] values and exponents are [`Scalar`]s mod the
//! group order `q`.
//!
//! # Example
//!
//! ```
//! use ppgr_group::{Group, GroupKind};
//! use rand::SeedableRng;
//!
//! let g = GroupKind::Ecc160.group();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let x = g.random_scalar(&mut rng);
//! let y = g.random_scalar(&mut rng);
//! // (g^x)^y == (g^y)^x — the heart of Diffie–Hellman.
//! let a = g.exp(&g.exp(g.generator(), &x), &y);
//! let b = g.exp(&g.exp(g.generator(), &y), &x);
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod cache;
mod dl;
mod ec;
mod kind;
mod msm;
mod scalar;
mod traits;

pub use cache::{CacheStats, ShardedLru};
pub use dl::{DlComb, DlGroup, DlParams};
pub use ec::{CurveParams, EcComb, EcGroup, EcPoint};
pub use kind::{GroupKind, SecurityLevel};
pub use scalar::Scalar;
pub use traits::{DecodeElementError, Element, FixedBaseTable, Group, GroupError, HopScalars};
