//! Multi-exponentiation correctness: `multi_exp` and `exp_same_batch`
//! must agree with the naive per-term fold on both group families,
//! including the degenerate shapes the engine special-cases (empty
//! input, zero scalars, identity bases, duplicate bases) and inputs
//! large enough to cross the Straus→Pippenger switchover.

use ppgr_group::{Element, Group, GroupError, GroupKind, Scalar};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The reference evaluation: one exponentiation per term, folded with
/// the group operation.
fn naive_fold(g: &Group, pairs: &[(&Element, &Scalar)]) -> Element {
    pairs
        .iter()
        .fold(g.identity(), |acc, (a, s)| g.op(&acc, &g.exp(a, s)))
}

/// Builds a pseudorandom instance with the requested degenerate shapes
/// mixed in: scalar 0, the identity element, and a duplicated base.
fn instance(g: &Group, n: usize, seed: u64) -> (Vec<Element>, Vec<Scalar>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bases: Vec<Element> = Vec::with_capacity(n);
    let mut scalars: Vec<Scalar> = Vec::with_capacity(n);
    for i in 0..n {
        let base = match i % 7 {
            0 if i > 0 => bases[i - 1].clone(), // duplicate base
            3 => g.identity(),
            _ => g.exp_gen(&g.random_scalar(&mut rng)),
        };
        let scalar = match i % 5 {
            2 => g.scalar_from_u64(0),
            4 => g.scalar_from_u64(1),
            _ => g.random_scalar(&mut rng),
        };
        bases.push(base);
        scalars.push(scalar);
    }
    (bases, scalars)
}

fn check_multi_exp(kind: GroupKind, n: usize, seed: u64) {
    let g = kind.group();
    let (bases, scalars) = instance(&g, n, seed);
    let pairs: Vec<(&Element, &Scalar)> = bases.iter().zip(&scalars).collect();
    assert_eq!(
        g.multi_exp(&pairs),
        naive_fold(&g, &pairs),
        "{kind:?} n={n} seed={seed}"
    );
}

fn check_exp_same_batch(kind: GroupKind, n: usize, seed: u64) {
    let g = kind.group();
    let (bases, _) = instance(&g, n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    for s in [
        g.scalar_from_u64(0),
        g.scalar_from_u64(1),
        g.random_scalar(&mut rng),
    ] {
        let refs: Vec<&Element> = bases.iter().collect();
        let batch = g.exp_same_batch(&refs, &s);
        assert_eq!(batch.len(), bases.len());
        for (b, got) in bases.iter().zip(&batch) {
            assert_eq!(got, &g.exp(b, &s), "{kind:?} n={n} seed={seed}");
        }
    }
}

#[test]
fn multi_exp_empty_input_is_identity() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        assert!(g.is_identity(&g.multi_exp(&[])));
        assert!(g.exp_same_batch(&[], &g.scalar_from_u64(5)).is_empty());
    }
}

#[test]
fn multi_exp_all_zero_scalars_is_identity() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        let (bases, _) = instance(&g, 6, 7);
        let zero = g.scalar_from_u64(0);
        let pairs: Vec<(&Element, &Scalar)> = bases.iter().map(|b| (b, &zero)).collect();
        assert!(g.is_identity(&g.multi_exp(&pairs)));
    }
}

#[test]
fn multi_exp_rejects_cross_family_elements() {
    let ec = GroupKind::Ecc160.group();
    let dl = GroupKind::Dl1024.group();
    let foreign = dl.generator().clone();
    let s = ec.scalar_from_u64(3);
    assert!(matches!(
        ec.try_multi_exp(&[(&foreign, &s)]),
        Err(GroupError::FamilyMismatch { .. })
    ));
}

#[test]
fn multi_exp_large_input_crosses_into_pippenger() {
    // 96 terms is far past the Straus/Pippenger switchover on both
    // families; correctness here exercises the bucket path end to end.
    check_multi_exp(GroupKind::Ecc160, 96, 11);
    check_multi_exp(GroupKind::Dl1024, 96, 13);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn multi_exp_matches_naive_fold_ecc(n in 1usize..24, seed in 0u64..1000) {
        check_multi_exp(GroupKind::Ecc160, n, seed);
    }

    #[test]
    fn multi_exp_matches_naive_fold_dl(n in 1usize..12, seed in 0u64..1000) {
        check_multi_exp(GroupKind::Dl1024, n, seed);
    }

    #[test]
    fn exp_same_batch_matches_singles_ecc(n in 1usize..16, seed in 0u64..1000) {
        check_exp_same_batch(GroupKind::Ecc160, n, seed);
    }

    #[test]
    fn exp_same_batch_matches_singles_dl(n in 1usize..8, seed in 0u64..1000) {
        check_exp_same_batch(GroupKind::Dl1024, n, seed);
    }
}
