//! Property-based tests of the group abstraction: the group laws must
//! hold for random elements and scalars in both families.

use ppgr_bigint::BigUint;
use ppgr_group::{Group, GroupKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn element_from_seed(g: &Group, seed: u64) -> ppgr_group::Element {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = g.random_scalar(&mut rng);
    g.exp_gen(&s)
}

fn check_group_laws(g: &Group, s1: u64, s2: u64, s3: u64) {
    let a = element_from_seed(g, s1);
    let b = element_from_seed(g, s2);
    let c = element_from_seed(g, s3);
    // Associativity and commutativity (the group is abelian).
    assert_eq!(g.op(&g.op(&a, &b), &c), g.op(&a, &g.op(&b, &c)));
    assert_eq!(g.op(&a, &b), g.op(&b, &a));
    // Identity and inverses.
    assert_eq!(g.op(&a, &g.identity()), a);
    assert!(g.is_identity(&g.op(&a, &g.inv(&a))));
    // Exponent laws.
    let x = g.scalar_from(&BigUint::from(s1 | 1));
    let y = g.scalar_from(&BigUint::from(s2 | 1));
    let lhs = g.exp(&a, &g.scalar_add(&x, &y));
    let rhs = g.op(&g.exp(&a, &x), &g.exp(&a, &y));
    assert_eq!(lhs, rhs, "a^(x+y) = a^x · a^y");
    let lhs = g.exp(&g.exp(&a, &x), &y);
    let rhs = g.exp(&a, &g.scalar_mul(&x, &y));
    assert_eq!(lhs, rhs, "(a^x)^y = a^(xy)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ecc160_group_laws(s1 in 1u64.., s2 in 1u64.., s3 in 1u64..) {
        check_group_laws(&GroupKind::Ecc160.group(), s1, s2, s3);
    }

    #[test]
    fn dl1024_group_laws(s1 in 1u64.., s2 in 1u64.., s3 in 1u64..) {
        check_group_laws(&GroupKind::Dl1024.group(), s1, s2, s3);
    }

    #[test]
    fn encode_decode_round_trip_random_elements(seed in 0u64..1000, dl in any::<bool>()) {
        let g = if dl { GroupKind::Dl1024.group() } else { GroupKind::Ecc224.group() };
        let e = element_from_seed(&g, seed);
        let enc = g.encode(&e);
        prop_assert_eq!(enc.len(), g.element_len());
        prop_assert_eq!(g.decode(&enc).unwrap(), e);
    }

    #[test]
    fn scalar_field_laws(a in 1u64.., b in 1u64.., c in 1u64..) {
        let g = GroupKind::Ecc160.group();
        let (a, b, c) = (g.scalar_from_u64(a), g.scalar_from_u64(b), g.scalar_from_u64(c));
        // Distributivity in Z_q.
        let lhs = g.scalar_mul(&a, &g.scalar_add(&b, &c));
        let rhs = g.scalar_add(&g.scalar_mul(&a, &b), &g.scalar_mul(&a, &c));
        prop_assert_eq!(lhs, rhs);
        // Inverse.
        if !a.is_zero() {
            let inv = g.scalar_inv(&a).unwrap();
            prop_assert_eq!(g.scalar_mul(&a, &inv), g.scalar_from_u64(1));
        }
    }
}
