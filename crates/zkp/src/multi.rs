//! The paper's multi-verifier Schnorr extension (Sec. IV-E).
//!
//! One prover convinces `n` verifiers at once:
//!
//! 1. prover publishes `h = g^r`;
//! 2. every verifier `j` publishes a challenge share `c_j`;
//! 3. prover publishes `z = r + x·Σc_j mod q`;
//! 4. every verifier checks `g^z = h·y^{Σc_j}`.
//!
//! Special soundness carries over: two accepting transcripts with the same
//! commitment and different challenge *sums* yield the witness.

use crate::schnorr::{SchnorrNonce, SchnorrTranscript};
use ppgr_group::{Element, Group, Scalar};
use rand::Rng;

/// A complete multi-verifier transcript `(h, {c_j}, z)`.
#[derive(Clone, Debug)]
pub struct MultiVerifierTranscript {
    /// Commitment `h = g^r`.
    pub commitment: Element,
    /// One challenge share per verifier.
    pub challenges: Vec<Scalar>,
    /// Response `z = r + x·Σc_j`.
    pub response: Scalar,
}

/// Runs the whole multi-verifier protocol with honest verifier challenges
/// drawn from `rng` (the HBC setting of the paper).
///
/// Returns the transcript each verifier observes.
#[derive(Debug)]
pub struct MultiVerifierProof;

impl MultiVerifierProof {
    /// Executes the protocol: `witness` is the prover's secret, `verifiers`
    /// is the number of challenge shares.
    ///
    /// # Panics
    ///
    /// Panics if `verifiers == 0`.
    pub fn run<R: Rng + ?Sized>(
        group: &Group,
        witness: &Scalar,
        verifiers: usize,
        rng: &mut R,
    ) -> MultiVerifierTranscript {
        assert!(verifiers > 0, "need at least one verifier");
        let pre = SchnorrNonce::draw(group, rng);
        Self::run_with_precomputed(group, witness, pre, verifiers, rng)
    }

    /// [`MultiVerifierProof::run`] with the commitment exponentiation done
    /// ahead of time: `pre` carries `(r, g^r)` from the offline phase, so
    /// the online work is the challenge draws and one scalar
    /// multiply-add — no exponentiation at all.
    ///
    /// For a `pre` drawn from the same stream position the inline path
    /// would have used, the transcript is bit-identical to [`run`]
    /// (pinned by a unit test below).
    ///
    /// # Panics
    ///
    /// Panics if `verifiers == 0`.
    ///
    /// [`run`]: MultiVerifierProof::run
    pub fn run_with_precomputed<R: Rng + ?Sized>(
        group: &Group,
        witness: &Scalar,
        pre: SchnorrNonce,
        verifiers: usize,
        rng: &mut R,
    ) -> MultiVerifierTranscript {
        assert!(verifiers > 0, "need at least one verifier");
        let challenges: Vec<Scalar> = (0..verifiers).map(|_| group.random_scalar(rng)).collect();
        Self::assemble(group, witness, pre, challenges)
    }

    /// Assembles a transcript from fully precomputed material: the nonce
    /// *and* the honest-verifier challenge shares were drawn offline, so no
    /// randomness source is needed at all — only the response multiply-add
    /// runs here. This is the fully-warm path: an offline key stock mints
    /// the entire proof before the session starts.
    ///
    /// For a nonce and challenges drawn from the same stream positions
    /// [`MultiVerifierProof::run`] would have used, the transcript is
    /// bit-identical to the inline run.
    ///
    /// # Panics
    ///
    /// Panics if `challenges` is empty.
    pub fn assemble(
        group: &Group,
        witness: &Scalar,
        pre: SchnorrNonce,
        challenges: Vec<Scalar>,
    ) -> MultiVerifierTranscript {
        assert!(!challenges.is_empty(), "need at least one verifier");
        let (r, commitment) = pre.into_parts();
        let total = Self::challenge_sum(group, &challenges);
        let response = group.scalar_add(r.expose(), &group.scalar_mul(witness, &total));
        MultiVerifierTranscript {
            commitment,
            challenges,
            response,
        }
    }

    fn challenge_sum(group: &Group, challenges: &[Scalar]) -> Scalar {
        let mut total = group.scalar_from_u64(0);
        for c in challenges {
            total = group.scalar_add(&total, c);
        }
        total
    }
}

impl MultiVerifierTranscript {
    /// A single verifier's check: `g^z = h·y^{Σc_j}`.
    pub fn verify(&self, group: &Group, statement: &Element) -> bool {
        self.as_single(group).verify(group, statement)
    }

    /// Collapses to an equivalent single-verifier transcript with
    /// `c = Σc_j` (used for extraction and analysis).
    pub fn as_single(&self, group: &Group) -> SchnorrTranscript {
        SchnorrTranscript {
            commitment: self.commitment.clone(),
            challenge: MultiVerifierProof::challenge_sum(group, &self.challenges),
            response: self.response.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::extract_witness;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn completeness_many_verifiers() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(21);
        let x = group.random_scalar(&mut rng);
        let y = group.exp_gen(&x);
        for n in [1usize, 2, 10, 25] {
            let t = MultiVerifierProof::run(&group, &x, n, &mut rng);
            assert_eq!(t.challenges.len(), n);
            assert!(t.verify(&group, &y), "n = {n}");
        }
    }

    #[test]
    fn precomputed_nonce_matches_inline_run() {
        // Same stream position → bit-identical transcripts, which is what
        // lets the offline pool swap in without changing any wire bytes.
        let group = GroupKind::Ecc160.group();
        let x = {
            let mut rng = StdRng::seed_from_u64(31);
            group.random_scalar(&mut rng)
        };
        let y = group.exp_gen(&x);
        for n in [1usize, 3, 7] {
            let mut inline_rng = StdRng::seed_from_u64(32);
            let inline = MultiVerifierProof::run(&group, &x, n, &mut inline_rng);

            let mut warm_rng = StdRng::seed_from_u64(32);
            let pre = SchnorrNonce::draw(&group, &mut warm_rng);
            let warm = MultiVerifierProof::run_with_precomputed(&group, &x, pre, n, &mut warm_rng);

            assert_eq!(inline.commitment, warm.commitment, "n = {n}");
            assert_eq!(inline.challenges, warm.challenges, "n = {n}");
            assert_eq!(inline.response, warm.response, "n = {n}");
            assert!(warm.verify(&group, &y), "n = {n}");
        }
    }

    #[test]
    fn assembled_transcript_matches_inline_run() {
        // Nonce *and* challenges drawn offline from the same stream → the
        // assembled proof is bit-identical to the inline protocol run.
        let group = GroupKind::Ecc160.group();
        let x = {
            let mut rng = StdRng::seed_from_u64(41);
            group.random_scalar(&mut rng)
        };
        let y = group.exp_gen(&x);
        for n in [1usize, 3, 7] {
            let mut inline_rng = StdRng::seed_from_u64(42);
            let inline = MultiVerifierProof::run(&group, &x, n, &mut inline_rng);

            let mut warm_rng = StdRng::seed_from_u64(42);
            let pre = SchnorrNonce::draw(&group, &mut warm_rng);
            let challenges: Vec<Scalar> =
                (0..n).map(|_| group.random_scalar(&mut warm_rng)).collect();
            let warm = MultiVerifierProof::assemble(&group, &x, pre, challenges);

            assert_eq!(inline.commitment, warm.commitment, "n = {n}");
            assert_eq!(inline.challenges, warm.challenges, "n = {n}");
            assert_eq!(inline.response, warm.response, "n = {n}");
            assert!(warm.verify(&group, &y), "n = {n}");
        }
    }

    #[test]
    fn wrong_statement_rejected() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(22);
        let x = group.random_scalar(&mut rng);
        let other = group.exp_gen(&group.scalar_add(&x, &group.scalar_from_u64(1)));
        let t = MultiVerifierProof::run(&group, &x, 5, &mut rng);
        assert!(!t.verify(&group, &other));
    }

    #[test]
    fn extractor_works_on_collapsed_transcripts() {
        // Rewind with the same nonce, fresh challenge shares.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(23);
        let x = group.random_scalar(&mut rng);
        let y = group.exp_gen(&x);

        let nonce = group.random_scalar(&mut rng);
        let h = group.exp_gen(&nonce);
        let run_with = |rng: &mut StdRng| {
            let challenges: Vec<Scalar> = (0..4).map(|_| group.random_scalar(rng)).collect();
            let total = challenges
                .iter()
                .fold(group.scalar_from_u64(0), |acc, c| group.scalar_add(&acc, c));
            MultiVerifierTranscript {
                commitment: h.clone(),
                challenges,
                response: group.scalar_add(&nonce, &group.scalar_mul(&x, &total)),
            }
        };
        let t1 = run_with(&mut rng).as_single(&group);
        let t2 = run_with(&mut rng).as_single(&group);
        assert!(t1.verify(&group, &y) && t2.verify(&group, &y));
        assert_eq!(extract_witness(&group, &t1, &t2), Some(x));
    }
}
