//! Proof-tamper entry points for malicious-security tests.
//!
//! The byzantine scenario matrix (`ppgr-core/tests/byzantine.rs`) and the
//! offline-stock corruption hook need to derange Schnorr transcripts in
//! controlled, reproducible ways: a response nudged off by one, two
//! provers' responses swapped, a response lifted from an unrelated
//! statement. Centralising the deranging here keeps every tamper
//! deterministic and keeps test harnesses from reinventing scalar
//! arithmetic — and gives the `fault-surface` tidy rule one sanctioned
//! place where proof tampering is allowed to live.
//!
//! Nothing here weakens the verifier: these helpers only ever *produce
//! invalid proofs*, which verification must reject with the tampered
//! prover named.

use crate::multi::MultiVerifierTranscript;
use crate::schnorr::SchnorrTranscript;
use ppgr_group::Group;

/// Nudges the response scalar by one: `z ← z + 1 mod q`. The transcript's
/// algebra (`g^z = h·y^c`) breaks with probability 1, so verification
/// must reject it and name this prover.
#[doc(hidden)]
pub fn bump_response(group: &Group, t: &mut SchnorrTranscript) {
    t.response = group.scalar_add(&t.response, &group.scalar_from_u64(1));
}

/// [`bump_response`] for the multi-verifier transcript shape
/// (`z ← z + 1 mod q` against the summed challenge).
#[doc(hidden)]
pub fn bump_multi_response(group: &Group, t: &mut MultiVerifierTranscript) {
    t.response = group.scalar_add(&t.response, &group.scalar_from_u64(1));
}

/// Swaps the responses of two transcripts — each proof now answers the
/// other's challenge ("swapped proofs"). Both become invalid unless the
/// witnesses, nonces and challenges all coincide.
#[doc(hidden)]
pub fn swap_responses(a: &mut SchnorrTranscript, b: &mut SchnorrTranscript) {
    std::mem::swap(&mut a.response, &mut b.response);
}

/// A deterministic, in-range, wrong response scalar, encoded big-endian
/// at the group's scalar width — exactly the bytes an honest prover's
/// response message carries, so a wire-level `Tamper::Replace` built from
/// this slots into the protocol undetected until verification.
///
/// Derived from `seed` by a fixed multiplier (no ambient randomness): the
/// same seed always forges the same bytes.
#[doc(hidden)]
pub fn forged_response_bytes(group: &Group, seed: u64) -> Vec<u8> {
    let s = group.scalar_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let width = group.order().bits().div_ceil(8);
    let raw = s.value().to_bytes_be();
    let mut out = vec![0u8; width.saturating_sub(raw.len())];
    out.extend_from_slice(&raw);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchnorrProver;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn transcript(
        group: &ppgr_group::Group,
        seed: u64,
    ) -> (ppgr_group::Element, SchnorrTranscript) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = group.random_scalar(&mut rng);
        let y = group.exp_gen(&x);
        let (prover, commitment) = SchnorrProver::commit(group, x, &mut rng);
        let c = group.random_scalar(&mut rng);
        (y, prover.respond(&c, commitment))
    }

    #[test]
    fn bumped_response_fails_verification() {
        let group = GroupKind::Ecc160.group();
        let (y, mut t) = transcript(&group, 1);
        assert!(t.verify(&group, &y));
        bump_response(&group, &mut t);
        assert!(!t.verify(&group, &y));
    }

    #[test]
    fn swapped_responses_fail_both_verifications() {
        let group = GroupKind::Ecc160.group();
        let (ya, mut ta) = transcript(&group, 2);
        let (yb, mut tb) = transcript(&group, 3);
        swap_responses(&mut ta, &mut tb);
        assert!(!ta.verify(&group, &ya));
        assert!(!tb.verify(&group, &yb));
    }

    #[test]
    fn forged_response_bytes_are_deterministic_and_scalar_width() {
        let group = GroupKind::Ecc160.group();
        let a = forged_response_bytes(&group, 7);
        let b = forged_response_bytes(&group, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), group.order().bits().div_ceil(8));
        assert_ne!(a, forged_response_bytes(&group, 8));
    }
}
