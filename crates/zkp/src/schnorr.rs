//! The interactive Schnorr identification protocol (single verifier).
//!
//! Proves knowledge of `x = log_g y` in three moves:
//!
//! 1. prover → verifier: commitment `h = g^r`
//! 2. verifier → prover: random challenge `c`
//! 3. prover → verifier: response `z = r + x·c mod q`
//!
//! The verifier accepts iff `g^z = h·y^c`.

use ppgr_bigint::Secret;
use ppgr_group::{Element, Group, Scalar};
use rand::Rng;
use std::fmt;

/// Prover state between the commitment and response moves.
///
/// # Example
///
/// ```
/// use ppgr_group::GroupKind;
/// use ppgr_zkp::SchnorrProver;
/// use rand::SeedableRng;
///
/// let group = GroupKind::Ecc160.group();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = group.random_scalar(&mut rng);
/// let y = group.exp_gen(&x);
///
/// let (prover, commitment) = SchnorrProver::commit(&group, x, &mut rng);
/// let challenge = group.random_scalar(&mut rng); // verifier's move
/// let transcript = prover.respond(&challenge, commitment);
/// assert!(transcript.verify(&group, &y));
/// ```
pub struct SchnorrProver {
    group: Group,
    witness: Secret<Scalar>,
    nonce: Secret<Scalar>,
}

impl fmt::Debug for SchnorrProver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchnorrProver")
            .field("group", &self.group)
            .field("witness", &self.witness)
            .field("nonce", &self.nonce)
            .finish()
    }
}

/// A precomputed commitment nonce `(r, h = g^r)` for the offline/online
/// phase split: the exponentiation happens ahead of time (offline), the
/// online proof only performs scalar arithmetic on `r`.
///
/// A nonce is strictly single-use — answering two different challenges
/// with the same `r` surrenders the witness (see [`extract_witness`]) —
/// so consuming APIs take it by value.
pub struct SchnorrNonce {
    nonce: Secret<Scalar>,
    commitment: Element,
}

impl SchnorrNonce {
    /// Draws a fresh nonce and computes its commitment (the offline work).
    ///
    /// Draws exactly one scalar from `rng` — the same single draw the
    /// inline proof paths perform — so a precomputed proof fed from the
    /// same randomness stream is bit-identical to an inline one.
    pub fn draw<R: Rng + ?Sized>(group: &Group, rng: &mut R) -> Self {
        let r = group.random_scalar(rng);
        let commitment = group.exp_gen(&r);
        SchnorrNonce {
            nonce: Secret::new(r),
            commitment,
        }
    }

    /// The public commitment `h = g^r`.
    pub fn commitment(&self) -> &Element {
        &self.commitment
    }

    pub(crate) fn into_parts(self) -> (Secret<Scalar>, Element) {
        (self.nonce, self.commitment)
    }
}

impl fmt::Debug for SchnorrNonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchnorrNonce")
            .field("nonce", &self.nonce)
            .field("commitment", &self.commitment)
            .finish()
    }
}

/// A complete transcript `(h, c, z)`; verification is stateless.
#[derive(Clone, Debug)]
pub struct SchnorrTranscript {
    /// Commitment `h = g^r`.
    pub commitment: Element,
    /// Challenge `c`.
    pub challenge: Scalar,
    /// Response `z = r + x·c`.
    pub response: Scalar,
}

impl SchnorrProver {
    /// First move: commit to a fresh nonce, returning `(state, h)`.
    pub fn commit<R: Rng + ?Sized>(group: &Group, witness: Scalar, rng: &mut R) -> (Self, Element) {
        let nonce = group.random_scalar(rng);
        let commitment = group.exp_gen(&nonce);
        (
            SchnorrProver {
                group: group.clone(),
                witness: Secret::new(witness),
                nonce: Secret::new(nonce),
            },
            commitment,
        )
    }

    /// Third move: answer the verifier's challenge.
    pub fn respond(self, challenge: &Scalar, commitment: Element) -> SchnorrTranscript {
        let response = self.group.scalar_add(
            self.nonce.expose(),
            &self.group.scalar_mul(self.witness.expose(), challenge),
        );
        SchnorrTranscript {
            commitment,
            challenge: challenge.clone(),
            response,
        }
    }
}

impl SchnorrTranscript {
    /// Verifier's check: `g^z = h·y^c`.
    ///
    /// A transcript whose commitment (or a statement) comes from a
    /// different group family can never be an accepting proof, so it is
    /// rejected rather than treated as a programming error — a verifier
    /// must survive arbitrary attacker-supplied messages.
    pub fn verify(&self, group: &Group, statement: &Element) -> bool {
        let lhs = group.exp_gen(&self.response);
        let Ok(yc) = group.try_exp(statement, &self.challenge) else {
            return false;
        };
        let Ok(rhs) = group.try_op(&self.commitment, &yc) else {
            return false;
        };
        lhs == rhs
    }
}

/// HVZK simulator: produces a transcript indistinguishable from a real one
/// *without* the witness, by sampling `z, c` first and solving for `h`.
///
/// Used by the security-game harness to demonstrate the zero-knowledge
/// property empirically (simulated and real transcripts have identical
/// distributions for an honest verifier).
pub fn simulate_transcript<R: Rng + ?Sized>(
    group: &Group,
    statement: &Element,
    rng: &mut R,
) -> SchnorrTranscript {
    let challenge = group.random_scalar(rng);
    let response = group.random_scalar(rng);
    // h = g^z / y^c
    let commitment = group.div(&group.exp_gen(&response), &group.exp(statement, &challenge));
    SchnorrTranscript {
        commitment,
        challenge,
        response,
    }
}

/// Special-soundness extractor: from two accepting transcripts with the
/// same commitment and different challenges, recovers the witness
/// `x = (z − z′)/(c − c′) mod q`.
///
/// Returns `None` if the transcripts do not share a commitment or the
/// challenges coincide. This is the knowledge extractor invoked (as a
/// thought experiment) by Lemma 3's simulator; the harness uses it for
/// real.
pub fn extract_witness(
    group: &Group,
    a: &SchnorrTranscript,
    b: &SchnorrTranscript,
) -> Option<Scalar> {
    if a.commitment != b.commitment || a.challenge == b.challenge {
        return None;
    }
    let dz = group.scalar_sub(&a.response, &b.response);
    let dc = group.scalar_sub(&a.challenge, &b.challenge);
    let dc_inv = group.scalar_inv(&dc)?;
    Some(group.scalar_mul(&dz, &dc_inv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, Scalar, Element, StdRng) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(11);
        let x = group.random_scalar(&mut rng);
        let y = group.exp_gen(&x);
        (group, x, y, rng)
    }

    #[test]
    fn completeness() {
        let (group, x, y, mut rng) = setup();
        for _ in 0..10 {
            let (p, h) = SchnorrProver::commit(&group, x.clone(), &mut rng);
            let c = group.random_scalar(&mut rng);
            let t = p.respond(&c, h);
            assert!(t.verify(&group, &y));
        }
    }

    #[test]
    fn soundness_wrong_witness_fails() {
        let (group, x, y, mut rng) = setup();
        let wrong = group.scalar_add(&x, &group.scalar_from_u64(1));
        let (p, h) = SchnorrProver::commit(&group, wrong, &mut rng);
        let c = group.random_nonzero_scalar(&mut rng);
        let t = p.respond(&c, h);
        assert!(!t.verify(&group, &y));
    }

    #[test]
    fn tampered_transcript_fails() {
        let (group, x, y, mut rng) = setup();
        let (p, h) = SchnorrProver::commit(&group, x, &mut rng);
        let c = group.random_scalar(&mut rng);
        let mut t = p.respond(&c, h);
        t.response = group.scalar_add(&t.response, &group.scalar_from_u64(1));
        assert!(!t.verify(&group, &y));
    }

    #[test]
    fn cross_family_transcript_rejected_without_panicking() {
        // An attacker handing a DL commitment to an ECC verifier gets a
        // clean rejection, not a crash.
        let (group, x, y, mut rng) = setup();
        let dl = GroupKind::Dl1024.group();
        let (p, h) = SchnorrProver::commit(&group, x, &mut rng);
        let c = group.random_scalar(&mut rng);
        let mut t = p.respond(&c, h);
        t.commitment = dl.generator().clone();
        assert!(!t.verify(&group, &y));
        let foreign_statement = dl.generator().clone();
        assert!(!SchnorrTranscript {
            commitment: group.generator().clone(),
            challenge: group.scalar_from_u64(1),
            response: group.scalar_from_u64(1),
        }
        .verify(&group, &foreign_statement));
    }

    #[test]
    fn simulated_transcripts_verify() {
        let (group, _x, y, mut rng) = setup();
        for _ in 0..10 {
            let t = simulate_transcript(&group, &y, &mut rng);
            assert!(t.verify(&group, &y), "simulator output must be accepting");
        }
    }

    #[test]
    fn extractor_recovers_witness() {
        let (group, x, y, mut rng) = setup();
        // Rewind the prover: same nonce, two challenges.
        let nonce = group.random_scalar(&mut rng);
        let h = group.exp_gen(&nonce);
        let mk = |c: &Scalar| SchnorrTranscript {
            commitment: h.clone(),
            challenge: c.clone(),
            response: group.scalar_add(&nonce, &group.scalar_mul(&x, c)),
        };
        let c1 = group.random_scalar(&mut rng);
        let c2 = group.scalar_add(&c1, &group.scalar_from_u64(1));
        let t1 = mk(&c1);
        let t2 = mk(&c2);
        assert!(t1.verify(&group, &y) && t2.verify(&group, &y));
        assert_eq!(extract_witness(&group, &t1, &t2), Some(x));
    }

    #[test]
    fn debug_redacts_witness_and_nonce() {
        let (group, x, _y, mut rng) = setup();
        let witness_digits = x.to_string();
        let (p, _h) = SchnorrProver::commit(&group, x, &mut rng);
        let dump = format!("{:?}", p);
        assert!(dump.contains("Secret(<redacted>)"), "got: {dump}");
        assert!(
            !dump.contains(&witness_digits),
            "witness value leaked through Debug: {dump}"
        );
    }

    #[test]
    fn extractor_rejects_same_challenge_or_commitment_mismatch() {
        let (group, x, y, mut rng) = setup();
        let (p, h) = SchnorrProver::commit(&group, x.clone(), &mut rng);
        let c = group.random_scalar(&mut rng);
        let t = p.respond(&c, h);
        assert!(extract_witness(&group, &t, &t.clone()).is_none());
        let other = simulate_transcript(&group, &y, &mut rng);
        assert!(extract_witness(&group, &t, &other).is_none());
    }
}
