//! Schnorr zero-knowledge proofs of discrete-log knowledge.
//!
//! Step 5 of the framework (paper Fig. 1) has every participant prove
//! knowledge of her ElGamal secret key to *all* other parties. This crate
//! implements:
//!
//! * the classic interactive, honest-verifier ZK Schnorr identification
//!   ([`schnorr`]) with its HVZK simulator and special-soundness extractor
//!   (both used by the security-game harness in `ppgr-core`);
//! * the paper's **multi-verifier** extension (Sec. IV-E): every verifier
//!   publishes a challenge share `c_j`, the prover answers
//!   `z = r + x·Σc_j`, and each verifier checks `g^z = h·y^{Σc_j}`
//!   ([`multi`]);
//! * a Fiat–Shamir non-interactive variant ([`nizk`]) for contexts without
//!   interaction (not used by the HBC framework itself, provided for
//!   completeness);
//! * **batch verification** ([`batch`]): k transcripts collapsed into a
//!   single multi-exponentiation via deterministic 128-bit combiners,
//!   falling back to per-proof checks so rejections still name the
//!   culprit.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod batch;
pub mod multi;
pub mod nizk;
pub mod schnorr;
#[doc(hidden)]
pub mod tamper;

pub use batch::{
    verify_batch, verify_batch_all, verify_multi_batch, verify_multi_batch_all,
    verify_sessions_multi_batch, SessionRejections,
};
pub use multi::{MultiVerifierProof, MultiVerifierTranscript};
pub use schnorr::{
    extract_witness, simulate_transcript, SchnorrNonce, SchnorrProver, SchnorrTranscript,
};
