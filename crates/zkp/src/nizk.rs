//! Fiat–Shamir non-interactive Schnorr proof.
//!
//! The challenge is derived as `c = H(domain ‖ g ‖ y ‖ h)` with SHA-256.
//! Not used by the interactive HBC framework, but provided so that
//! applications built on this crate can run without a challenge round.

use crate::schnorr::SchnorrTranscript;
use ppgr_bigint::BigUint;
use ppgr_group::{Element, Group, Scalar};
use ppgr_hash::Sha256;
use rand::Rng;

/// Domain-separation tag for the Fiat–Shamir hash.
const DOMAIN: &[u8] = b"ppgr/nizk/schnorr/v1";

fn derive_challenge(group: &Group, statement: &Element, commitment: &Element) -> Scalar {
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(&group.encode(group.generator()));
    h.update(&group.encode(statement));
    h.update(&group.encode(commitment));
    let digest = h.finalize();
    group.scalar_from(&BigUint::from_bytes_be(&digest))
}

/// Produces a non-interactive proof of knowledge of `witness = log_g y`.
pub fn prove<R: Rng + ?Sized>(group: &Group, witness: &Scalar, rng: &mut R) -> SchnorrTranscript {
    let statement = group.exp_gen(witness);
    let nonce = group.random_scalar(rng);
    let commitment = group.exp_gen(&nonce);
    let challenge = derive_challenge(group, &statement, &commitment);
    let response = group.scalar_add(&nonce, &group.scalar_mul(witness, &challenge));
    SchnorrTranscript {
        commitment,
        challenge,
        response,
    }
}

/// Verifies a non-interactive proof: recomputes the challenge and checks
/// the Schnorr equation.
pub fn verify(group: &Group, statement: &Element, proof: &SchnorrTranscript) -> bool {
    let expected = derive_challenge(group, statement, &proof.commitment);
    expected == proof.challenge && proof.verify(group, statement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(31);
        let x = group.random_scalar(&mut rng);
        let y = group.exp_gen(&x);
        let proof = prove(&group, &x, &mut rng);
        assert!(verify(&group, &y, &proof));
    }

    #[test]
    fn proof_does_not_transfer_to_other_statement() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(32);
        let x = group.random_scalar(&mut rng);
        let proof = prove(&group, &x, &mut rng);
        let other = group.exp_gen(&group.scalar_add(&x, &group.scalar_from_u64(1)));
        assert!(!verify(&group, &other, &proof));
    }

    #[test]
    fn challenge_tampering_detected() {
        let group = GroupKind::Dl1024.group();
        let mut rng = StdRng::seed_from_u64(33);
        let x = group.random_scalar(&mut rng);
        let y = group.exp_gen(&x);
        let mut proof = prove(&group, &x, &mut rng);
        proof.challenge = group.scalar_add(&proof.challenge, &group.scalar_from_u64(1));
        assert!(!verify(&group, &y, &proof));
    }
}
