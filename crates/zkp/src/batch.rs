//! Batch Schnorr verification: k transcripts, one multi-exponentiation.
//!
//! A single transcript `(h, c, z)` for statement `y` verifies as
//! `g^z = h·y^c` — two full exponentiations per proof. Scaling each
//! equation by an independent small combiner `wᵢ` and multiplying them
//! together gives one aggregate check,
//!
//! ```text
//!     g^{Σ wᵢzᵢ}  =  Π hᵢ^{wᵢ} · yᵢ^{wᵢcᵢ}
//! ```
//!
//! whose right-hand side is a 2k-term multi-exponentiation
//! ([`Group::try_multi_exp`]) with half the scalars only 128 bits wide,
//! and whose left-hand side is a single fixed-base exponentiation. A
//! cheater passes the aggregate check only by predicting its combiner —
//! probability `≤ 2⁻¹²⁸` per attempt.
//!
//! The combiners are derived **deterministically** by hashing the whole
//! transcript set (statements, commitments, challenges, responses) under
//! a domain-separation tag. Ambient randomness (`thread_rng`, `OsRng`)
//! is deliberately not used: the framework's transcripts must be
//! bit-identical across replays (`ppgr-tidy` enforces this crate-wide),
//! and deterministic combiners lose nothing — a prover cannot influence
//! her combiner without also changing the hash input she must satisfy.
//!
//! Batch rejection falls back to per-proof verification, so the caller
//! always learns *which* proof failed (`SortError::ProofRejected` in
//! `ppgr-core` still names the culprit party). The individual checks are
//! authoritative; the aggregate equation is purely an accelerator.

use crate::multi::MultiVerifierTranscript;
use crate::schnorr::SchnorrTranscript;
use ppgr_bigint::BigUint;
use ppgr_group::{Element, Group, Scalar};
use ppgr_hash::Sha256;

/// Domain-separation tag for combiner derivation.
const DOMAIN: &[u8] = b"ppgr/zkp/batch/v1";

/// Combiner width in bytes (128 bits): small enough that half the MSM
/// scalars are cheap, large enough that forging the aggregate equation
/// is as hard as forging a proof.
const COMBINER_BYTES: usize = 16;

/// Verifies `k` Schnorr transcripts in one aggregate equation.
///
/// Each item pairs a statement `yᵢ` with its transcript. Returns `Ok(())`
/// if every proof verifies; otherwise `Err(i)` with the index of the
/// first failing proof (established by the per-proof fallback scan, never
/// by the aggregate equation alone).
///
/// The empty batch is vacuously valid. Cross-family or otherwise
/// malformed inputs are handled like any rejection: the fallback scan
/// attributes them.
pub fn verify_batch(group: &Group, items: &[(&Element, &SchnorrTranscript)]) -> Result<(), usize> {
    if items.is_empty() {
        return Ok(());
    }
    if items.len() == 1 {
        let (y, t) = items[0];
        return if t.verify(group, y) { Ok(()) } else { Err(0) };
    }
    if batch_equation_holds(group, items) == Some(true) {
        return Ok(());
    }
    scan(group, items)
}

/// Verifies `k` multi-verifier transcripts in one aggregate equation by
/// first collapsing each to its single-verifier form (summed challenge).
pub fn verify_multi_batch(
    group: &Group,
    items: &[(&Element, &MultiVerifierTranscript)],
) -> Result<(), usize> {
    let singles: Vec<SchnorrTranscript> = items.iter().map(|(_, t)| t.as_single(group)).collect();
    let refs: Vec<(&Element, &SchnorrTranscript)> = items
        .iter()
        .zip(&singles)
        .map(|((y, _), t)| (*y, t))
        .collect();
    verify_batch(group, &refs)
}

/// Per-proof fallback: authoritative, names the first failing index.
/// Finding none is possible only on a combiner collision (`≤ 2⁻¹²⁸`) or
/// after a transient aggregate mismatch that individual checks refute —
/// either way the individual verdicts win.
fn scan(group: &Group, items: &[(&Element, &SchnorrTranscript)]) -> Result<(), usize> {
    match items.iter().position(|(y, t)| !t.verify(group, y)) {
        Some(i) => Err(i),
        None => Ok(()),
    }
}

/// Evaluates the aggregate equation. `None` means the input could not be
/// combined (e.g. a cross-family element) — the caller treats that like a
/// rejection and lets the fallback scan attribute it.
fn batch_equation_holds(group: &Group, items: &[(&Element, &SchnorrTranscript)]) -> Option<bool> {
    let combiners = derive_combiners(group, items)?;
    // Left side: g^{Σ wᵢzᵢ} — one fixed-base exponentiation.
    let mut z_total = group.scalar_from_u64(0);
    // Right side: the 2k MSM terms (hᵢ, wᵢ) and (yᵢ, wᵢ·cᵢ).
    let mut scaled: Vec<(Scalar, Scalar)> = Vec::with_capacity(items.len());
    for (w, (_, t)) in combiners.iter().zip(items) {
        z_total = group.scalar_add(&z_total, &group.scalar_mul(w, &t.response));
        scaled.push((w.clone(), group.scalar_mul(w, &t.challenge)));
    }
    let mut terms: Vec<(&Element, &Scalar)> = Vec::with_capacity(2 * items.len());
    for ((y, t), (w, wc)) in items.iter().zip(&scaled) {
        terms.push((&t.commitment, w));
        terms.push((y, wc));
    }
    let lhs = group.exp_gen(&z_total);
    let rhs = group.try_multi_exp(&terms).ok()?;
    Some(lhs == rhs)
}

/// Derives the 128-bit combiners: one SHA-256 pass binds the entire
/// transcript set into a seed, then each index is expanded from the seed.
/// Returns `None` if any element cannot be encoded under this group.
fn derive_combiners(
    group: &Group,
    items: &[(&Element, &SchnorrTranscript)],
) -> Option<Vec<Scalar>> {
    let scalar_len = group.order().bits().div_ceil(8);
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(&(items.len() as u64).to_be_bytes());
    for (y, t) in items {
        h.update(&group.try_encode(y).ok()?);
        h.update(&group.try_encode(&t.commitment).ok()?);
        h.update(&scalar_bytes(scalar_len, &t.challenge));
        h.update(&scalar_bytes(scalar_len, &t.response));
    }
    let seed = h.finalize();
    Some(
        (0..items.len())
            .map(|i| {
                let mut hi = Sha256::new();
                hi.update(DOMAIN);
                hi.update(&seed);
                hi.update(&(i as u64).to_be_bytes());
                let digest = hi.finalize();
                let w = group.scalar_from(&BigUint::from_bytes_be(&digest[..COMBINER_BYTES]));
                // A zero combiner would drop proof i from the aggregate
                // equation entirely; map it to 1 (probability 2⁻¹²⁸).
                if w.is_zero() {
                    group.scalar_from_u64(1)
                } else {
                    w
                }
            })
            .collect(),
    )
}

/// Fixed-width big-endian scalar bytes, so the hash input is unambiguous.
fn scalar_bytes(width: usize, s: &Scalar) -> Vec<u8> {
    let raw = s.value().to_bytes_be();
    let mut out = vec![0u8; width.saturating_sub(raw.len())];
    out.extend_from_slice(&raw);
    out
}
