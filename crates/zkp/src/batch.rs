//! Batch Schnorr verification: k transcripts, one multi-exponentiation.
//!
//! A single transcript `(h, c, z)` for statement `y` verifies as
//! `g^z = h·y^c` — two full exponentiations per proof. Scaling each
//! equation by an independent small combiner `wᵢ` and multiplying them
//! together gives one aggregate check,
//!
//! ```text
//!     g^{Σ wᵢzᵢ}  =  Π hᵢ^{wᵢ} · yᵢ^{wᵢcᵢ}
//! ```
//!
//! whose right-hand side is a 2k-term multi-exponentiation
//! ([`Group::try_multi_exp`]) with half the scalars only 128 bits wide,
//! and whose left-hand side is a single fixed-base exponentiation. A
//! cheater passes the aggregate check only by predicting its combiner —
//! probability `≤ 2⁻¹²⁸` per attempt.
//!
//! The combiners are derived **deterministically** by hashing the whole
//! transcript set (statements, commitments, challenges, responses) under
//! a domain-separation tag. Ambient randomness (`thread_rng`, `OsRng`)
//! is deliberately not used: the framework's transcripts must be
//! bit-identical across replays (`ppgr-tidy` enforces this crate-wide),
//! and deterministic combiners lose nothing — a prover cannot influence
//! her combiner without also changing the hash input she must satisfy.
//!
//! Batch rejection falls back to per-proof verification, so the caller
//! always learns *which* proof failed (`SortError::ProofRejected` in
//! `ppgr-core` still names the culprit party). The individual checks are
//! authoritative; the aggregate equation is purely an accelerator.
//!
//! Two granularities of attribution are offered. The `*_all` variants
//! ([`verify_batch_all`], [`verify_multi_batch_all`]) report **every**
//! rejected proof in protocol order, not just the first culprit — when an
//! aggregate mixes proofs from many protocol sessions, the first failing
//! index alone cannot blame more than one session. On top of them,
//! [`verify_sessions_multi_batch`] collapses *many sessions'* proof sets
//! into one MSM and, on rejection, hands back a per-session rejection
//! list, so cross-session amortization never blurs which session (and
//! which prover inside it) cheated.

use crate::multi::MultiVerifierTranscript;
use crate::schnorr::SchnorrTranscript;
use ppgr_bigint::BigUint;
use ppgr_group::{Element, Group, Scalar};
use ppgr_hash::Sha256;

/// Domain-separation tag for combiner derivation.
const DOMAIN: &[u8] = b"ppgr/zkp/batch/v1";

/// Combiner width in bytes (128 bits): small enough that half the MSM
/// scalars are cheap, large enough that forging the aggregate equation
/// is as hard as forging a proof.
const COMBINER_BYTES: usize = 16;

/// Verifies `k` Schnorr transcripts in one aggregate equation.
///
/// Each item pairs a statement `yᵢ` with its transcript. Returns `Ok(())`
/// if every proof verifies; otherwise `Err(i)` with the index of the
/// first failing proof (established by the per-proof fallback scan, never
/// by the aggregate equation alone).
///
/// The empty batch is vacuously valid. Cross-family or otherwise
/// malformed inputs are handled like any rejection: the fallback scan
/// attributes them.
pub fn verify_batch(group: &Group, items: &[(&Element, &SchnorrTranscript)]) -> Result<(), usize> {
    verify_batch_all(group, items).map_err(|rejected| rejected[0])
}

/// [`verify_batch`] with full attribution: on rejection, `Err` carries
/// **every** failing index in protocol (input) order, never just the
/// first. The list is established by the authoritative per-proof rescan
/// and is always non-empty.
///
/// # Errors
///
/// `Err(rejected)` with the sorted indices of all individually failing
/// proofs.
pub fn verify_batch_all(
    group: &Group,
    items: &[(&Element, &SchnorrTranscript)],
) -> Result<(), Vec<usize>> {
    if items.is_empty() {
        return Ok(());
    }
    if items.len() == 1 {
        let (y, t) = items[0];
        return if t.verify(group, y) {
            Ok(())
        } else {
            Err(vec![0])
        };
    }
    if batch_equation_holds(group, items) == Some(true) {
        return Ok(());
    }
    scan_all(group, items)
}

/// Verifies `k` multi-verifier transcripts in one aggregate equation by
/// first collapsing each to its single-verifier form (summed challenge).
///
/// # Errors
///
/// `Err(i)` with the index of the first failing proof — the first element
/// of the full rejection list [`verify_multi_batch_all`] would report.
pub fn verify_multi_batch(
    group: &Group,
    items: &[(&Element, &MultiVerifierTranscript)],
) -> Result<(), usize> {
    verify_multi_batch_all(group, items).map_err(|rejected| rejected[0])
}

/// [`verify_multi_batch`] with full attribution: on rejection, `Err`
/// carries every failing index in protocol order (see
/// [`verify_batch_all`]).
///
/// # Errors
///
/// `Err(rejected)` with the sorted indices of all individually failing
/// proofs.
pub fn verify_multi_batch_all(
    group: &Group,
    items: &[(&Element, &MultiVerifierTranscript)],
) -> Result<(), Vec<usize>> {
    let singles: Vec<SchnorrTranscript> = items.iter().map(|(_, t)| t.as_single(group)).collect();
    let refs: Vec<(&Element, &SchnorrTranscript)> = items
        .iter()
        .zip(&singles)
        .map(|((y, _), t)| (*y, t))
        .collect();
    verify_batch_all(group, &refs)
}

/// All proofs one session contributed that failed individual
/// verification, reported by [`verify_sessions_multi_batch`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct SessionRejections {
    /// Index of the session in the submitted slice.
    pub session: usize,
    /// Indices of the rejected proofs *within that session's set*, in
    /// protocol order. Never empty.
    pub proofs: Vec<usize>,
}

/// Cross-session aggregate verification: every session's multi-verifier
/// proof set, collapsed and folded into **one** aggregate equation (a
/// single `2·Σkᵢ`-term multi-exponentiation), so concurrent sessions
/// amortize their Schnorr verification into one MSM call.
///
/// The combiners are derived from the flat concatenation of all sessions'
/// transcripts under the same domain tag as [`verify_batch`] — still
/// deterministic, and a prover in one session cannot influence another
/// session's combiner without changing the hash input she must satisfy.
///
/// On rejection, the authoritative per-proof rescan attributes **all**
/// failing proofs back to their sessions, in submission order, with each
/// session's rejections in protocol order — per-session first-culprit
/// attribution survives batching by taking `proofs[0]` of that session's
/// entry.
///
/// # Errors
///
/// `Err(rejections)` with one [`SessionRejections`] entry per session
/// that contributed at least one individually failing proof.
pub fn verify_sessions_multi_batch(
    group: &Group,
    sessions: &[&[(&Element, &MultiVerifierTranscript)]],
) -> Result<(), Vec<SessionRejections>> {
    let singles: Vec<SchnorrTranscript> = sessions
        .iter()
        .flat_map(|items| items.iter().map(|(_, t)| t.as_single(group)))
        .collect();
    let flat: Vec<(&Element, &SchnorrTranscript)> = sessions
        .iter()
        .flat_map(|items| items.iter().map(|(y, _)| *y))
        .zip(&singles)
        .collect();
    if flat.is_empty() {
        return Ok(());
    }
    if flat.len() > 1 && batch_equation_holds(group, &flat) == Some(true) {
        return Ok(());
    }
    // Aggregate failed (or was degenerate): rescan each proof individually
    // and fold the verdicts back onto session boundaries.
    let mut rejections = Vec::new();
    let mut offset = 0;
    for (session, items) in sessions.iter().enumerate() {
        let proofs: Vec<usize> = (0..items.len())
            .filter(|i| {
                let (y, t) = flat[offset + i];
                !t.verify(group, y)
            })
            .collect();
        if !proofs.is_empty() {
            rejections.push(SessionRejections { session, proofs });
        }
        offset += items.len();
    }
    if rejections.is_empty() {
        Ok(())
    } else {
        Err(rejections)
    }
}

/// Per-proof fallback: authoritative, names every failing index in input
/// order. Finding none is possible only on a combiner collision
/// (`≤ 2⁻¹²⁸`) or after a transient aggregate mismatch that individual
/// checks refute — either way the individual verdicts win.
fn scan_all(group: &Group, items: &[(&Element, &SchnorrTranscript)]) -> Result<(), Vec<usize>> {
    let rejected: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, (y, t))| !t.verify(group, y))
        .map(|(i, _)| i)
        .collect();
    if rejected.is_empty() {
        Ok(())
    } else {
        Err(rejected)
    }
}

/// Evaluates the aggregate equation. `None` means the input could not be
/// combined (e.g. a cross-family element) — the caller treats that like a
/// rejection and lets the fallback scan attribute it.
fn batch_equation_holds(group: &Group, items: &[(&Element, &SchnorrTranscript)]) -> Option<bool> {
    let combiners = derive_combiners(group, items)?;
    // Left side: g^{Σ wᵢzᵢ} — one fixed-base exponentiation.
    let mut z_total = group.scalar_from_u64(0);
    // Right side: the 2k MSM terms (hᵢ, wᵢ) and (yᵢ, wᵢ·cᵢ).
    let mut scaled: Vec<(Scalar, Scalar)> = Vec::with_capacity(items.len());
    for (w, (_, t)) in combiners.iter().zip(items) {
        z_total = group.scalar_add(&z_total, &group.scalar_mul(w, &t.response));
        scaled.push((w.clone(), group.scalar_mul(w, &t.challenge)));
    }
    let mut terms: Vec<(&Element, &Scalar)> = Vec::with_capacity(2 * items.len());
    for ((y, t), (w, wc)) in items.iter().zip(&scaled) {
        terms.push((&t.commitment, w));
        terms.push((y, wc));
    }
    let lhs = group.exp_gen(&z_total);
    let rhs = group.try_multi_exp(&terms).ok()?;
    Some(lhs == rhs)
}

/// Derives the 128-bit combiners: one SHA-256 pass binds the entire
/// transcript set into a seed, then each index is expanded from the seed.
/// Returns `None` if any element cannot be encoded under this group.
fn derive_combiners(
    group: &Group,
    items: &[(&Element, &SchnorrTranscript)],
) -> Option<Vec<Scalar>> {
    let scalar_len = group.order().bits().div_ceil(8);
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(&(items.len() as u64).to_be_bytes());
    for (y, t) in items {
        h.update(&group.try_encode(y).ok()?);
        h.update(&group.try_encode(&t.commitment).ok()?);
        h.update(&scalar_bytes(scalar_len, &t.challenge));
        h.update(&scalar_bytes(scalar_len, &t.response));
    }
    let seed = h.finalize();
    Some(
        (0..items.len())
            .map(|i| {
                let mut hi = Sha256::new();
                hi.update(DOMAIN);
                hi.update(&seed);
                hi.update(&(i as u64).to_be_bytes());
                let digest = hi.finalize();
                let w = group.scalar_from(&BigUint::from_bytes_be(&digest[..COMBINER_BYTES]));
                // A zero combiner would drop proof i from the aggregate
                // equation entirely; map it to 1 (probability 2⁻¹²⁸).
                if w.is_zero() {
                    group.scalar_from_u64(1)
                } else {
                    w
                }
            })
            .collect(),
    )
}

/// Fixed-width big-endian scalar bytes, so the hash input is unambiguous.
fn scalar_bytes(width: usize, s: &Scalar) -> Vec<u8> {
    let raw = s.value().to_bytes_be();
    let mut out = vec![0u8; width.saturating_sub(raw.len())];
    out.extend_from_slice(&raw);
    out
}
