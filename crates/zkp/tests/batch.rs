//! Batch verification soundness and attribution: a valid batch passes, a
//! tampered proof inside a batch of valid ones is rejected *and* pinned
//! to the right index, and the aggregate equation never overrules the
//! individual checks.

use ppgr_group::{Element, Group, GroupKind, Scalar};
use ppgr_zkp::{verify_batch, verify_multi_batch, MultiVerifierProof, SchnorrProver};
use ppgr_zkp::{MultiVerifierTranscript, SchnorrTranscript};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn proofs(g: &Group, k: usize, seed: u64) -> (Vec<Element>, Vec<SchnorrTranscript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut statements = Vec::with_capacity(k);
    let mut transcripts = Vec::with_capacity(k);
    for _ in 0..k {
        let x = g.random_scalar(&mut rng);
        statements.push(g.exp_gen(&x));
        let (p, h) = SchnorrProver::commit(g, x, &mut rng);
        let c = g.random_scalar(&mut rng);
        transcripts.push(p.respond(&c, h));
    }
    (statements, transcripts)
}

fn items<'a>(
    ys: &'a [Element],
    ts: &'a [SchnorrTranscript],
) -> Vec<(&'a Element, &'a SchnorrTranscript)> {
    ys.iter().zip(ts).collect()
}

#[test]
fn valid_batches_pass_on_both_families() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        for k in [0usize, 1, 2, 5, 15] {
            let (ys, ts) = proofs(&g, k, 42 + k as u64);
            assert_eq!(verify_batch(&g, &items(&ys, &ts)), Ok(()), "{kind:?} k={k}");
        }
    }
}

#[test]
fn single_tampered_proof_is_attributed_to_the_right_index() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        for bad in [0usize, 3, 7] {
            let (ys, mut ts) = proofs(&g, 8, 99);
            ts[bad].response = g.scalar_add(&ts[bad].response, &g.scalar_from_u64(1));
            assert_eq!(
                verify_batch(&g, &items(&ys, &ts)),
                Err(bad),
                "{kind:?} bad={bad}"
            );
        }
    }
}

#[test]
fn multiple_bad_proofs_report_the_first() {
    let g = GroupKind::Ecc160.group();
    let (ys, mut ts) = proofs(&g, 8, 7);
    for bad in [2usize, 5] {
        ts[bad].challenge = g.scalar_add(&ts[bad].challenge, &g.scalar_from_u64(3));
    }
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(2));
}

#[test]
fn tampered_singleton_batch_is_rejected() {
    let g = GroupKind::Ecc160.group();
    let (ys, mut ts) = proofs(&g, 1, 1);
    ts[0].response = g.scalar_add(&ts[0].response, &g.scalar_from_u64(1));
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(0));
}

#[test]
fn cross_family_element_is_rejected_not_panicking() {
    let g = GroupKind::Ecc160.group();
    let dl = GroupKind::Dl1024.group();
    let (mut ys, ts) = proofs(&g, 4, 3);
    ys[1] = dl.generator().clone();
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(1));
}

#[test]
fn batch_verdict_is_deterministic() {
    // Same transcripts, same verdict, no ambient randomness: run twice.
    let g = GroupKind::Ecc160.group();
    let (ys, ts) = proofs(&g, 6, 1234);
    let a = verify_batch(&g, &items(&ys, &ts));
    let b = verify_batch(&g, &items(&ys, &ts));
    assert_eq!(a, b);
    assert_eq!(a, Ok(()));
}

#[test]
fn multi_verifier_batch_collapses_and_attributes() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        let mut rng = StdRng::seed_from_u64(77);
        let mut ys: Vec<Element> = Vec::new();
        let mut ts: Vec<MultiVerifierTranscript> = Vec::new();
        for _ in 0..5 {
            let x = g.random_scalar(&mut rng);
            ys.push(g.exp_gen(&x));
            ts.push(MultiVerifierProof::run(&g, &x, 3, &mut rng));
        }
        let refs: Vec<(&Element, &MultiVerifierTranscript)> = ys.iter().zip(&ts).collect();
        assert_eq!(verify_multi_batch(&g, &refs), Ok(()), "{kind:?}");

        let bumped: Scalar = g.scalar_add(&ts[4].response, &g.scalar_from_u64(1));
        ts[4].response = bumped;
        let refs: Vec<(&Element, &MultiVerifierTranscript)> = ys.iter().zip(&ts).collect();
        assert_eq!(verify_multi_batch(&g, &refs), Err(4), "{kind:?}");
    }
}
