//! Batch verification soundness and attribution: a valid batch passes, a
//! tampered proof inside a batch of valid ones is rejected *and* pinned
//! to the right index, and the aggregate equation never overrules the
//! individual checks.

use ppgr_group::{Element, Group, GroupKind, Scalar};
use ppgr_zkp::{
    verify_batch, verify_batch_all, verify_multi_batch, verify_multi_batch_all,
    verify_sessions_multi_batch, MultiVerifierProof, SchnorrProver, SessionRejections,
};
use ppgr_zkp::{MultiVerifierTranscript, SchnorrTranscript};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn proofs(g: &Group, k: usize, seed: u64) -> (Vec<Element>, Vec<SchnorrTranscript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut statements = Vec::with_capacity(k);
    let mut transcripts = Vec::with_capacity(k);
    for _ in 0..k {
        let x = g.random_scalar(&mut rng);
        statements.push(g.exp_gen(&x));
        let (p, h) = SchnorrProver::commit(g, x, &mut rng);
        let c = g.random_scalar(&mut rng);
        transcripts.push(p.respond(&c, h));
    }
    (statements, transcripts)
}

fn items<'a>(
    ys: &'a [Element],
    ts: &'a [SchnorrTranscript],
) -> Vec<(&'a Element, &'a SchnorrTranscript)> {
    ys.iter().zip(ts).collect()
}

#[test]
fn valid_batches_pass_on_both_families() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        for k in [0usize, 1, 2, 5, 15] {
            let (ys, ts) = proofs(&g, k, 42 + k as u64);
            assert_eq!(verify_batch(&g, &items(&ys, &ts)), Ok(()), "{kind:?} k={k}");
        }
    }
}

#[test]
fn single_tampered_proof_is_attributed_to_the_right_index() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        for bad in [0usize, 3, 7] {
            let (ys, mut ts) = proofs(&g, 8, 99);
            ts[bad].response = g.scalar_add(&ts[bad].response, &g.scalar_from_u64(1));
            assert_eq!(
                verify_batch(&g, &items(&ys, &ts)),
                Err(bad),
                "{kind:?} bad={bad}"
            );
        }
    }
}

#[test]
fn multiple_bad_proofs_report_the_first() {
    let g = GroupKind::Ecc160.group();
    let (ys, mut ts) = proofs(&g, 8, 7);
    for bad in [2usize, 5] {
        ts[bad].challenge = g.scalar_add(&ts[bad].challenge, &g.scalar_from_u64(3));
    }
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(2));
}

#[test]
fn tampered_singleton_batch_is_rejected() {
    let g = GroupKind::Ecc160.group();
    let (ys, mut ts) = proofs(&g, 1, 1);
    ts[0].response = g.scalar_add(&ts[0].response, &g.scalar_from_u64(1));
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(0));
}

#[test]
fn cross_family_element_is_rejected_not_panicking() {
    let g = GroupKind::Ecc160.group();
    let dl = GroupKind::Dl1024.group();
    let (mut ys, ts) = proofs(&g, 4, 3);
    ys[1] = dl.generator().clone();
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(1));
}

#[test]
fn batch_verdict_is_deterministic() {
    // Same transcripts, same verdict, no ambient randomness: run twice.
    let g = GroupKind::Ecc160.group();
    let (ys, ts) = proofs(&g, 6, 1234);
    let a = verify_batch(&g, &items(&ys, &ts));
    let b = verify_batch(&g, &items(&ys, &ts));
    assert_eq!(a, b);
    assert_eq!(a, Ok(()));
}

#[test]
fn all_variant_reports_every_rejection_in_protocol_order() {
    let g = GroupKind::Ecc160.group();
    let (ys, mut ts) = proofs(&g, 8, 7);
    for bad in [2usize, 5, 6] {
        ts[bad].challenge = g.scalar_add(&ts[bad].challenge, &g.scalar_from_u64(3));
    }
    assert_eq!(verify_batch_all(&g, &items(&ys, &ts)), Err(vec![2, 5, 6]));
    // The first-culprit wrapper is exactly the head of the full list.
    assert_eq!(verify_batch(&g, &items(&ys, &ts)), Err(2));
}

fn multi_proofs(
    g: &Group,
    k: usize,
    verifiers: usize,
    seed: u64,
) -> (Vec<Element>, Vec<MultiVerifierTranscript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ys = Vec::with_capacity(k);
    let mut ts = Vec::with_capacity(k);
    for _ in 0..k {
        let x = g.random_scalar(&mut rng);
        ys.push(g.exp_gen(&x));
        ts.push(MultiVerifierProof::run(g, &x, verifiers, &mut rng));
    }
    (ys, ts)
}

fn multi_items<'a>(
    ys: &'a [Element],
    ts: &'a [MultiVerifierTranscript],
) -> Vec<(&'a Element, &'a MultiVerifierTranscript)> {
    ys.iter().zip(ts).collect()
}

#[test]
fn multi_all_variant_reports_every_rejection() {
    let g = GroupKind::Ecc160.group();
    let (ys, mut ts) = multi_proofs(&g, 6, 3, 400);
    for bad in [1usize, 4] {
        ts[bad].response = g.scalar_add(&ts[bad].response, &g.scalar_from_u64(1));
    }
    let refs = multi_items(&ys, &ts);
    assert_eq!(verify_multi_batch_all(&g, &refs), Err(vec![1, 4]));
    assert_eq!(verify_multi_batch(&g, &refs), Err(1));
}

#[test]
fn sessions_batch_passes_when_every_session_is_honest() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        let sets: Vec<_> = (0..4).map(|s| multi_proofs(&g, 3, 2, 500 + s)).collect();
        let per_session: Vec<Vec<(&Element, &MultiVerifierTranscript)>> =
            sets.iter().map(|(ys, ts)| multi_items(ys, ts)).collect();
        let sessions: Vec<&[(&Element, &MultiVerifierTranscript)]> =
            per_session.iter().map(Vec::as_slice).collect();
        assert_eq!(
            verify_sessions_multi_batch(&g, &sessions),
            Ok(()),
            "{kind:?}"
        );
    }
}

#[test]
fn sessions_batch_attributes_every_failure_to_its_session() {
    // Sessions 1 and 3 each contribute bad proofs (session 3 two of them);
    // the rescan must name all of them, grouped per session in submission
    // order with each session's list in protocol order.
    let g = GroupKind::Ecc160.group();
    let mut sets: Vec<_> = (0..4).map(|s| multi_proofs(&g, 3, 2, 600 + s)).collect();
    sets[1].1[2].response = g.scalar_add(&sets[1].1[2].response, &g.scalar_from_u64(1));
    sets[3].1[0].response = g.scalar_add(&sets[3].1[0].response, &g.scalar_from_u64(1));
    sets[3].1[1].response = g.scalar_add(&sets[3].1[1].response, &g.scalar_from_u64(1));
    let per_session: Vec<Vec<(&Element, &MultiVerifierTranscript)>> =
        sets.iter().map(|(ys, ts)| multi_items(ys, ts)).collect();
    let sessions: Vec<&[(&Element, &MultiVerifierTranscript)]> =
        per_session.iter().map(Vec::as_slice).collect();
    assert_eq!(
        verify_sessions_multi_batch(&g, &sessions),
        Err(vec![
            SessionRejections {
                session: 1,
                proofs: vec![2],
            },
            SessionRejections {
                session: 3,
                proofs: vec![0, 1],
            },
        ])
    );
}

#[test]
fn sessions_batch_handles_empty_and_singleton_shapes() {
    let g = GroupKind::Ecc160.group();
    assert_eq!(verify_sessions_multi_batch(&g, &[]), Ok(()));
    // One session with one proof — degenerate aggregate, still verified.
    let (ys, mut ts) = multi_proofs(&g, 1, 2, 700);
    let good = multi_items(&ys, &ts);
    assert_eq!(
        verify_sessions_multi_batch(&g, &[good.as_slice(), &[]]),
        Ok(())
    );
    ts[0].response = g.scalar_add(&ts[0].response, &g.scalar_from_u64(1));
    let bad = multi_items(&ys, &ts);
    assert_eq!(
        verify_sessions_multi_batch(&g, &[&[], bad.as_slice()]),
        Err(vec![SessionRejections {
            session: 1,
            proofs: vec![0],
        }])
    );
}

#[test]
fn sessions_batch_verdict_matches_per_session_verdicts() {
    // The cross-session aggregate must agree with running each session's
    // own batch: same accepts, same per-session first culprit.
    let g = GroupKind::Dl1024.group();
    let mut sets: Vec<_> = (0..3).map(|s| multi_proofs(&g, 4, 3, 800 + s)).collect();
    sets[2].1[1].challenges[0] = g.scalar_add(&sets[2].1[1].challenges[0], &g.scalar_from_u64(5));
    let per_session: Vec<Vec<(&Element, &MultiVerifierTranscript)>> =
        sets.iter().map(|(ys, ts)| multi_items(ys, ts)).collect();
    let sessions: Vec<&[(&Element, &MultiVerifierTranscript)]> =
        per_session.iter().map(Vec::as_slice).collect();
    let aggregate = verify_sessions_multi_batch(&g, &sessions);
    for (s, items) in per_session.iter().enumerate() {
        let solo = verify_multi_batch(&g, items);
        match (&aggregate, solo) {
            (Ok(()), verdict) => assert_eq!(verdict, Ok(()), "session {s}"),
            (Err(rejections), verdict) => match rejections.iter().find(|r| r.session == s) {
                Some(r) => assert_eq!(verdict, Err(r.proofs[0]), "session {s}"),
                None => assert_eq!(verdict, Ok(()), "session {s}"),
            },
        }
    }
}

#[test]
fn multi_verifier_batch_collapses_and_attributes() {
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let g = kind.group();
        let mut rng = StdRng::seed_from_u64(77);
        let mut ys: Vec<Element> = Vec::new();
        let mut ts: Vec<MultiVerifierTranscript> = Vec::new();
        for _ in 0..5 {
            let x = g.random_scalar(&mut rng);
            ys.push(g.exp_gen(&x));
            ts.push(MultiVerifierProof::run(&g, &x, 3, &mut rng));
        }
        let refs: Vec<(&Element, &MultiVerifierTranscript)> = ys.iter().zip(&ts).collect();
        assert_eq!(verify_multi_batch(&g, &refs), Ok(()), "{kind:?}");

        let bumped: Scalar = g.scalar_add(&ts[4].response, &g.scalar_from_u64(1));
        ts[4].response = bumped;
        let refs: Vec<(&Element, &MultiVerifierTranscript)> = ys.iter().zip(&ts).collect();
        assert_eq!(verify_multi_batch(&g, &refs), Err(4), "{kind:?}");
    }
}
