//! Hybrid encryption: ElGamal KEM + HKDF keystream + HMAC tag.
//!
//! A layer of the mix-net onion. The KEM encapsulates a random group
//! element; HKDF expands its encoding into an XOR keystream and a MAC
//! key. Tampering with any byte is detected by the tag, which is what the
//! original construction relies on (an IND-CCA2 layer) to keep HBC mixers
//! honest-verifiable.

use ppgr_elgamal::{Ciphertext, ElGamal};
use ppgr_group::{Element, Group, Scalar};
use ppgr_hash::{hkdf_sha256, hmac_sha256};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Domain label for key derivation.
const KDF_INFO: &[u8] = b"ppgr/anon/hybrid/v1";

/// A hybrid ciphertext: KEM part + masked body + tag.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct HybridCiphertext {
    /// ElGamal encapsulation of the session element.
    pub kem: Ciphertext,
    /// Body XOR keystream.
    pub body: Vec<u8>,
    /// HMAC over the masked body.
    pub tag: [u8; 32],
}

/// Decryption failure.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum HybridError {
    /// The authentication tag did not verify.
    BadTag,
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl Error for HybridError {}

fn derive_keys(group: &Group, session: &Element, len: usize) -> (Vec<u8>, [u8; 32]) {
    let okm = hkdf_sha256(b"", &group.encode(session), KDF_INFO, len + 32);
    let mut mac_key = [0u8; 32];
    mac_key.copy_from_slice(&okm[len..]);
    (okm[..len].to_vec(), mac_key)
}

/// Encrypts `plaintext` to `public_key`.
pub fn encrypt<R: Rng + ?Sized>(
    group: &Group,
    public_key: &Element,
    plaintext: &[u8],
    rng: &mut R,
) -> HybridCiphertext {
    let scheme = ElGamal::new(group.clone());
    // Random session element: g^s for random s.
    let s: Scalar = group.random_nonzero_scalar(rng);
    let session = group.exp_gen(&s);
    let kem = scheme.encrypt(public_key, &session, rng);
    let (stream, mac_key) = derive_keys(group, &session, plaintext.len());
    let body: Vec<u8> = plaintext.iter().zip(&stream).map(|(p, k)| p ^ k).collect();
    let tag = hmac_sha256(&mac_key, &body);
    HybridCiphertext { kem, body, tag }
}

/// Decrypts one layer.
///
/// # Errors
///
/// [`HybridError::BadTag`] if the ciphertext was modified or the wrong
/// key is used.
pub fn decrypt(
    group: &Group,
    secret_key: &Scalar,
    ct: &HybridCiphertext,
) -> Result<Vec<u8>, HybridError> {
    let scheme = ElGamal::new(group.clone());
    let session = scheme.decrypt(secret_key, &ct.kem);
    let (stream, mac_key) = derive_keys(group, &session, ct.body.len());
    let expect = hmac_sha256(&mac_key, &ct.body);
    if expect != ct.tag {
        return Err(HybridError::BadTag);
    }
    // tidy:allow(secret-escape) — decrypt's contract: the recovered plaintext returns to the caller; the pad and session key never leave this frame
    Ok(ct.body.iter().zip(&stream).map(|(c, k)| c ^ k).collect())
}

/// Serializes to bytes (`kem ‖ tag ‖ body`), the onion layer format.
pub fn to_bytes(group: &Group, ct: &HybridCiphertext) -> Vec<u8> {
    let mut out = ct.kem.encode(group);
    out.extend_from_slice(&ct.tag);
    out.extend_from_slice(&ct.body);
    out
}

/// Parses bytes produced by [`to_bytes`]. Returns `None` on malformed
/// framing (body may be empty).
pub fn from_bytes(group: &Group, bytes: &[u8]) -> Option<HybridCiphertext> {
    let elen = group.element_len();
    let header = 2 * elen + 32;
    if bytes.len() < header {
        return None;
    }
    let alpha = group.decode(&bytes[..elen]).ok()?;
    let beta = group.decode(&bytes[elen..2 * elen]).ok()?;
    let mut tag = [0u8; 32];
    tag.copy_from_slice(&bytes[2 * elen..header]);
    Some(HybridCiphertext {
        kem: Ciphertext { alpha, beta },
        body: bytes[header..].to_vec(),
        tag,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_elgamal::KeyPair;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, KeyPair, StdRng) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&group, &mut rng);
        (group, kp, rng)
    }

    #[test]
    fn round_trip_various_lengths() {
        let (group, kp, mut rng) = setup();
        for msg in [&b""[..], b"x", b"hello world", &[0xAA; 1000]] {
            let ct = encrypt(&group, kp.public_key(), msg, &mut rng);
            assert_eq!(decrypt(&group, kp.secret_key(), &ct).unwrap(), msg);
        }
    }

    #[test]
    fn tamper_detected() {
        let (group, kp, mut rng) = setup();
        let mut ct = encrypt(&group, kp.public_key(), b"secret", &mut rng);
        ct.body[0] ^= 1;
        assert_eq!(
            decrypt(&group, kp.secret_key(), &ct),
            Err(HybridError::BadTag)
        );
    }

    #[test]
    fn wrong_key_detected() {
        let (group, kp, mut rng) = setup();
        let other = KeyPair::generate(&group, &mut rng);
        let ct = encrypt(&group, kp.public_key(), b"secret", &mut rng);
        assert_eq!(
            decrypt(&group, other.secret_key(), &ct),
            Err(HybridError::BadTag)
        );
    }

    #[test]
    fn encryption_is_randomized() {
        let (group, kp, mut rng) = setup();
        let a = encrypt(&group, kp.public_key(), b"same", &mut rng);
        let b = encrypt(&group, kp.public_key(), b"same", &mut rng);
        assert_ne!(a, b);
        assert_ne!(a.body, b.body, "keystream must differ per encryption");
    }

    #[test]
    fn bytes_round_trip() {
        let (group, kp, mut rng) = setup();
        let ct = encrypt(&group, kp.public_key(), b"framed", &mut rng);
        let bytes = to_bytes(&group, &ct);
        let back = from_bytes(&group, &bytes).unwrap();
        assert_eq!(back, ct);
        assert!(from_bytes(&group, &bytes[..10]).is_none());
    }
}
