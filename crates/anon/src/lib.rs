//! Anonymous data collection by decryption mix-net — the
//! Brickell–Shmatikov idea (KDD'06) the paper's shuffle is borrowed from
//! (paper Sec. II: "We leverage the key idea of the random shuffle in
//! [13]").
//!
//! `n` group members each submit an opaque message to a data collector
//! such that the collector (and up to `n − 2` colluding members) cannot
//! link a message to its author:
//!
//! 1. every member publishes a public key;
//! 2. each member wraps her message in `n` layers of hybrid encryption
//!    (innermost = member `n`'s key, outermost = member `1`'s key);
//! 3. member 1 strips the outer layer from *all* onions and shuffles,
//!    passes the batch to member 2, and so on;
//! 4. after member `n`, the batch is the multiset of plaintexts in a
//!    random composite order — any single honest mixer's shuffle suffices
//!    for unlinkability.
//!
//! The hybrid layer is ElGamal KEM + HKDF-derived XOR stream + HMAC tag
//! ([`hybrid`]). The mix-net itself is [`mixnet`].
//!
//! # Example
//!
//! ```
//! use ppgr_anon::mixnet::AnonymousCollection;
//! use ppgr_group::GroupKind;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut session = AnonymousCollection::setup(GroupKind::Ecc160.group(), 3, &mut rng);
//! let onions = vec![
//!     session.wrap(b"alpha", &mut rng).unwrap(),
//!     session.wrap(b"bravo", &mut rng).unwrap(),
//!     session.wrap(b"charlie", &mut rng).unwrap(),
//! ];
//! let collected = session.mix_and_collect(onions, &mut rng).unwrap();
//! let mut msgs: Vec<&[u8]> = collected.iter().map(Vec::as_slice).collect();
//! msgs.sort();
//! assert_eq!(msgs, vec![&b"alpha"[..], b"bravo", b"charlie"]);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod hybrid;
pub mod mixnet;
