//! The decryption mix-net: layered onions, strip-and-shuffle rounds.

use crate::hybrid::{self, HybridCiphertext, HybridError};
use ppgr_elgamal::KeyPair;
use ppgr_group::Group;
use rand::seq::SliceRandom;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Mix-net failure.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum MixError {
    /// A layer failed to authenticate (tampering or wrong layer order).
    Layer(usize, HybridError),
    /// An onion's framing was malformed at some layer.
    Malformed(usize),
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::Layer(i, e) => write!(f, "mixer {i} could not strip a layer: {e}"),
            MixError::Malformed(i) => write!(f, "mixer {i} received a malformed onion"),
        }
    }
}

impl Error for MixError {}

/// A collection session: the members' key pairs (the simulation holds all
/// of them; a deployment would hold only its own).
#[derive(Debug)]
pub struct AnonymousCollection {
    group: Group,
    keys: Vec<KeyPair>,
    /// Which mixers shuffle (all, in the honest protocol; the games
    /// disable subsets to demonstrate the anonymity mechanism).
    shuffling: Vec<bool>,
}

impl AnonymousCollection {
    /// Creates a session with `n` members, generating their keys.
    pub fn setup<R: Rng + ?Sized>(group: Group, n: usize, rng: &mut R) -> Self {
        let keys = (0..n).map(|_| KeyPair::generate(&group, rng)).collect();
        AnonymousCollection {
            group,
            keys,
            shuffling: vec![true; n],
        }
    }

    /// Number of members.
    pub fn members(&self) -> usize {
        self.keys.len()
    }

    /// Disables mixer `i`'s shuffle (game harness only).
    pub fn disable_shuffle(&mut self, mixer: usize) {
        self.shuffling[mixer] = false;
    }

    /// Wraps a message in all `n` layers: outermost is member 0's key, so
    /// member 0 strips first.
    ///
    /// # Errors
    ///
    /// Infallible in practice; `Result` mirrors the deployment API where
    /// remote keys may be invalid.
    pub fn wrap<R: Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> Result<Vec<u8>, MixError> {
        let mut onion = message.to_vec();
        for kp in self.keys.iter().rev() {
            let ct = hybrid::encrypt(&self.group, kp.public_key(), &onion, rng);
            onion = hybrid::to_bytes(&self.group, &ct);
        }
        Ok(onion)
    }

    /// One mixer's step: strip this mixer's layer from every onion, then
    /// shuffle the batch.
    ///
    /// # Errors
    ///
    /// See [`MixError`].
    pub fn mix_step<R: Rng + ?Sized>(
        &self,
        mixer: usize,
        batch: Vec<Vec<u8>>,
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, MixError> {
        let mut out = Vec::with_capacity(batch.len());
        for onion in batch {
            let ct: HybridCiphertext =
                hybrid::from_bytes(&self.group, &onion).ok_or(MixError::Malformed(mixer))?;
            let inner = hybrid::decrypt(&self.group, self.keys[mixer].secret_key(), &ct)
                .map_err(|e| MixError::Layer(mixer, e))?;
            out.push(inner);
        }
        if self.shuffling[mixer] {
            out.shuffle(rng);
        }
        Ok(out)
    }

    /// Runs the whole pipeline: every member strips and shuffles in turn;
    /// the returned batch is the unlinkable multiset of plaintexts.
    ///
    /// # Errors
    ///
    /// See [`MixError`].
    pub fn mix_and_collect<R: Rng + ?Sized>(
        &self,
        mut batch: Vec<Vec<u8>>,
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, MixError> {
        for mixer in 0..self.keys.len() {
            batch = self.mix_step(mixer, batch, rng)?;
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(n: usize, seed: u64) -> (AnonymousCollection, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = AnonymousCollection::setup(GroupKind::Ecc160.group(), n, &mut rng);
        (s, rng)
    }

    #[test]
    fn collects_all_messages() {
        let (s, mut rng) = session(4, 1);
        let msgs: Vec<&[u8]> = vec![b"a", b"bb", b"ccc", b"dddd"];
        let onions = msgs
            .iter()
            .map(|m| s.wrap(m, &mut rng).unwrap())
            .collect::<Vec<_>>();
        let mut got = s.mix_and_collect(onions, &mut rng).unwrap();
        got.sort();
        let mut want: Vec<Vec<u8>> = msgs.iter().map(|m| m.to_vec()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn order_is_randomized() {
        // Across several sessions, the output order of a marked message
        // varies — shuffling happened.
        let mut positions = Vec::new();
        for seed in 0..6 {
            let (s, mut rng) = session(3, seed);
            let onions = vec![
                s.wrap(b"marked", &mut rng).unwrap(),
                s.wrap(b"x", &mut rng).unwrap(),
                s.wrap(b"y", &mut rng).unwrap(),
            ];
            let got = s.mix_and_collect(onions, &mut rng).unwrap();
            positions.push(got.iter().position(|m| m == b"marked").unwrap());
        }
        assert!(positions.windows(2).any(|w| w[0] != w[1]), "{positions:?}");
    }

    #[test]
    fn single_honest_shuffler_suffices() {
        // All mixers but one disabled: the marked message still moves.
        let mut moved = false;
        for seed in 0..8 {
            let (mut s, mut rng) = session(3, 100 + seed);
            s.disable_shuffle(0);
            s.disable_shuffle(2);
            let onions = vec![
                s.wrap(b"marked", &mut rng).unwrap(),
                s.wrap(b"x", &mut rng).unwrap(),
            ];
            let got = s.mix_and_collect(onions, &mut rng).unwrap();
            if got[0] != b"marked" {
                moved = true;
            }
        }
        assert!(moved, "one honest mixer must still unlink positions");
    }

    #[test]
    fn no_shuffle_at_all_is_linkable() {
        // Negative control: with every shuffle disabled, input order is
        // preserved — the linking attack wins.
        let (mut s, mut rng) = session(3, 42);
        for i in 0..3 {
            s.disable_shuffle(i);
        }
        let onions = vec![
            s.wrap(b"first", &mut rng).unwrap(),
            s.wrap(b"second", &mut rng).unwrap(),
            s.wrap(b"third", &mut rng).unwrap(),
        ];
        let got = s.mix_and_collect(onions, &mut rng).unwrap();
        assert_eq!(
            got,
            vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]
        );
    }

    #[test]
    fn tampered_onion_rejected() {
        let (s, mut rng) = session(3, 7);
        let mut onion = s.wrap(b"msg", &mut rng).unwrap();
        let last = onion.len() - 1;
        onion[last] ^= 0xFF;
        let err = s.mix_and_collect(vec![onion], &mut rng).unwrap_err();
        assert!(matches!(err, MixError::Layer(0, _)));
    }

    #[test]
    fn onion_grows_linearly_with_members() {
        let (s3, mut rng) = session(3, 9);
        let (s6, mut rng6) = session(6, 9);
        let o3 = s3.wrap(b"m", &mut rng).unwrap();
        let o6 = s6.wrap(b"m", &mut rng6).unwrap();
        let layer = 2 * GroupKind::Ecc160.group().element_len() + 32;
        assert_eq!(o6.len() - o3.len(), 3 * layer);
    }
}
