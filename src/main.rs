//! `ppgr` — command-line demo of the privacy-preserving group ranking
//! framework.
//!
//! ```text
//! ppgr run  --participants 6 --top-k 2 --group ecc160 --seed 7 \
//!           --attrs age:eq,friends:gt --d1 8 --d2 4 --mask 8 [--distributed]
//! ppgr sort --values 83,71,97,71 --bits 8 --group ecc160
//! ppgr simulate --participants 4 --group dl1024
//! ppgr info
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr::bigint::BigUint;
use ppgr::core::{
    run_distributed, unlinkable_sort, AttributeKind, FrameworkParams, GroupRanking, PartyTimer,
    Questionnaire,
};
use ppgr::group::GroupKind;
use ppgr::hash::HashDrbg;
use ppgr::net::sim::NetworkSim;
use ppgr::net::TrafficLog;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "sort" => cmd_sort(rest),
        "simulate" => cmd_simulate(rest),
        "info" => cmd_info(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ppgr — privacy preserving group ranking (ICDCS 2012)

commands:
  run       run the full three-phase framework on a random population
            --participants N   (default 5)
            --top-k K          (default 2)
            --group KIND       dl1024|dl2048|dl3072|ecc160|ecc224|ecc256 (default ecc160)
            --attrs SPEC       e.g. age:eq,friends:gt (default one eq + two gt)
            --d1 BITS          attribute width (default 6)
            --d2 BITS          weight width (default 3)
            --mask BITS        mask width h (default 6)
            --seed N           (default 0)
            --distributed      run thread-per-party over channels
  sort      run only the identity-unlinkable sorting protocol
            --values a,b,c     the parties' private integers
            --bits L           bit length (default: fit the max value)
            --group KIND / --seed N
  simulate  replay a run's traffic over the 80-node / 2 Mbps / 50 ms network
            --participants N / --group KIND / --seed N
  info      list the available group instantiations";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {flag:?}"));
        };
        if name == "distributed" {
            map.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    flags.get(key).map_or(Ok(default), |v| {
        v.parse().map_err(|_| format!("--{key}: bad number {v:?}"))
    })
}

fn get_group(flags: &HashMap<String, String>) -> Result<GroupKind, String> {
    match flags.get("group").map(String::as_str).unwrap_or("ecc160") {
        "dl1024" => Ok(GroupKind::Dl1024),
        "dl2048" => Ok(GroupKind::Dl2048),
        "dl3072" => Ok(GroupKind::Dl3072),
        "ecc160" => Ok(GroupKind::Ecc160),
        "ecc224" => Ok(GroupKind::Ecc224),
        "ecc256" => Ok(GroupKind::Ecc256),
        other => Err(format!("unknown group {other:?}")),
    }
}

fn parse_questionnaire(spec: Option<&String>) -> Result<Questionnaire, String> {
    let Some(spec) = spec else {
        return Ok(Questionnaire::synthetic(1, 2));
    };
    let mut b = Questionnaire::builder();
    for part in spec.split(',') {
        let (name, kind) = part
            .split_once(':')
            .ok_or_else(|| format!("attribute {part:?} must be name:eq or name:gt"))?;
        let kind = match kind {
            "eq" => AttributeKind::EqualTo,
            "gt" => AttributeKind::GreaterThan,
            other => return Err(format!("unknown attribute kind {other:?}")),
        };
        b = b.attribute(name, kind);
    }
    b.build().map_err(|e| e.to_string())
}

fn build_params(flags: &HashMap<String, String>) -> Result<FrameworkParams, String> {
    let q = parse_questionnaire(flags.get("attrs"))?;
    FrameworkParams::builder(q)
        .participants(get_usize(flags, "participants", 5)?)
        .top_k(get_usize(flags, "top-k", 2)?)
        .attr_bits(get_usize(flags, "d1", 6)? as u32)
        .weight_bits(get_usize(flags, "d2", 3)? as u32)
        .mask_bits(get_usize(flags, "mask", 6)? as u32)
        .group(get_group(flags)?)
        .seed(get_usize(flags, "seed", 0)? as u64)
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let params = build_params(&flags)?;
    println!(
        "n={}, k={}, group={}, l={} bits, seed={}",
        params.participants(),
        params.top_k(),
        params.group(),
        params.beta_bits(),
        params.seed()
    );
    if flags.contains_key("distributed") {
        let mut rng = HashDrbg::seed_from_u64(params.seed());
        let (profile, infos) = params.random_population(&mut rng);
        let out = run_distributed(&params, profile, infos).map_err(|e| e.to_string())?;
        println!("distributed run (thread per party):");
        for (i, r) in out.ranks.iter().enumerate() {
            println!("  P{} → rank {r}", i + 1);
        }
        println!(
            "initiator accepted {} submissions; report clean: {}",
            out.report.accepted.len(),
            out.report.is_clean()
        );
    } else {
        let outcome = GroupRanking::new(params)
            .with_random_population()
            .run()
            .map_err(|e| e.to_string())?;
        for (i, r) in outcome.ranks().iter().enumerate() {
            println!("  P{} → rank {r}", i + 1);
        }
        for acc in outcome.top_k() {
            println!(
                "  top-k: P{} (rank {}, gain {})",
                acc.submission.party, acc.submission.claimed_rank, acc.gain
            );
        }
        let t = outcome.traffic();
        println!(
            "traffic: {} msgs / {} bytes / {} rounds",
            t.messages, t.total_bytes, t.rounds
        );
        println!(
            "mean participant compute: {:?}",
            outcome.timings().mean_participant_total()
        );
    }
    Ok(())
}

fn cmd_sort(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let spec = flags.get("values").ok_or("--values a,b,c required")?;
    let values: Vec<u64> = spec
        .split(',')
        .map(|v| v.parse().map_err(|_| format!("bad value {v:?}")))
        .collect::<Result<_, _>>()?;
    let max_bits = values
        .iter()
        .map(|v| 64 - v.leading_zeros())
        .max()
        .unwrap_or(1) as usize;
    let l = get_usize(&flags, "bits", max_bits.max(1))?;
    let group = get_group(&flags)?.group();
    let seed = get_usize(&flags, "seed", 0)? as u64;

    let big: Vec<BigUint> = values.iter().map(|&v| BigUint::from(v)).collect();
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(values.len() + 1);
    let mut rng = HashDrbg::seed_from_u64(seed);
    let out = unlinkable_sort(&group, &big, l, &mut rng, &log, &mut timer, 0)
        .map_err(|e| e.to_string())?;
    for (i, (v, r)) in values.iter().zip(&out.ranks).enumerate() {
        println!("P{} (value {v}) → rank {r}", i + 1);
    }
    let s = log.summary();
    println!("wire: {} msgs / {} bytes", s.messages, s.total_bytes);
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let params = build_params(&flags)?;
    let n = params.participants();
    let runner = GroupRanking::new(params).with_random_population();
    let log = runner.traffic_log();
    let outcome = runner.run().map_err(|e| e.to_string())?;
    let sim = NetworkSim::paper_setup(n + 1, 7);
    let report = sim.simulate_log(&log).map_err(|e| e.to_string())?;
    println!(
        "protocol: {} msgs / {} bytes; simulated completion on the paper's network: {:.2} s",
        outcome.traffic().messages,
        outcome.traffic().total_bytes,
        report.completion_s
    );
    Ok(())
}

fn cmd_info() -> Result<(), String> {
    println!("available groups (NIST-equivalent security levels):");
    for kind in GroupKind::all() {
        let g = kind.group();
        println!(
            "  {kind:<8} {:>3}-bit security, element {} bytes, order {} bits",
            kind.security_level().bits(),
            g.element_len(),
            g.order().bits()
        );
    }
    Ok(())
}
