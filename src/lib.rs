//! # ppgr — Privacy Preserving Group Ranking
//!
//! A full Rust reproduction of *“Privacy Preserving Group Ranking”*
//! (Li, Zhao, Xue, Silva — IEEE ICDCS 2012): an initiator and `n`
//! participants jointly rank the participants by a private gain function so
//! that each participant learns only her own rank, the initiator learns only
//! the top-k, and gains cannot be linked to identities by up to `n−2`
//! colluders.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the framework itself (three phases, the identity-unlinkable
//!   multiparty sorting protocol, security-game harness).
//! * [`bigint`], [`group`], [`elgamal`], [`zkp`], [`dotprod`] — the
//!   cryptographic substrates, all implemented from scratch.
//! * [`runtime`] — the multi-session throughput runtime: a persistent
//!   work-stealing worker pool executing many ranking sessions
//!   concurrently with cross-session hop pipelining.
//! * [`service`] — the ranking-as-a-service front door: sharded session
//!   routing, budget-driven admission control, and cross-session crypto
//!   amortization on top of the runtime.
//! * [`smc`] — the Shamir/BGW secret-sharing baseline (“SS framework”).
//! * [`net`] — in-memory transports, traffic metrics, and the NS2-substitute
//!   discrete-event network simulator.
//! * [`hash`] — SHA-256 / HMAC / HKDF / DRBG.
//! * [`anon`] — the Brickell–Shmatikov anonymous-collection mix-net the
//!   paper's shuffle borrows from.
//! * [`paillier`] — the additively homomorphic alternative the paper
//!   discusses and rejects (Sec. II), implemented so the argument can be
//!   checked.
//!
//! # Quickstart
//!
//! ```
//! use ppgr::core::{AttributeKind, FrameworkParams, GroupRanking, Questionnaire};
//! use ppgr::group::GroupKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let questionnaire = Questionnaire::builder()
//!     .attribute("age", AttributeKind::EqualTo)
//!     .attribute("friends", AttributeKind::GreaterThan)
//!     .build()?;
//! let params = FrameworkParams::builder(questionnaire)
//!     .participants(4)
//!     .top_k(2)
//!     .group(GroupKind::Ecc160)
//!     .attr_bits(6)      // d₁ — small demo widths keep this example fast
//!     .weight_bits(3)    // d₂
//!     .mask_bits(6)      // h
//!     .seed(7)
//!     .build()?;
//! let outcome = GroupRanking::new(params)
//!     .with_random_population()
//!     .run()?;
//! assert_eq!(outcome.top_k().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub use ppgr_anon as anon;
pub use ppgr_bigint as bigint;
pub use ppgr_core as core;
pub use ppgr_dotprod as dotprod;
pub use ppgr_elgamal as elgamal;
pub use ppgr_group as group;
pub use ppgr_hash as hash;
pub use ppgr_net as net;
pub use ppgr_paillier as paillier;
pub use ppgr_runtime as runtime;
pub use ppgr_service as service;
pub use ppgr_smc as smc;
pub use ppgr_zkp as zkp;
