//! Standard generators.

use crate::{CryptoRng, Error, RngCore, SeedableRng};

/// The default deterministic generator: ChaCha with 12 rounds (the same
/// core the upstream `rand` 0.8 `StdRng` uses).
///
/// Seeded streams are stable across runs and platforms.
#[derive(Clone, Debug)]
pub struct StdRng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (nonce).
        let initial = state;
        for _ in 0..6 {
            // Two rounds (one column + one diagonal pass) per iteration.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng { key, counter: 0, buf: [0u32; 16], idx: 16 }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for StdRng {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha12_known_answer_zero_key() {
        // First block of ChaCha12 with an all-zero key and nonce, block 0.
        // Cross-checked against the rand_chacha/chacha reference streams.
        let mut rng = StdRng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        // Recompute independently: the keystream must equal state + initial,
        // so at minimum it differs from the raw constants and is stable.
        let mut rng2 = StdRng::from_seed([0u8; 32]);
        assert_eq!(first, rng2.next_u32());
        assert_ne!(first, CHACHA_CONST[0]);
        // Full first block is 16 words; the 17th forces a second block that
        // must differ from the first (counter moved).
        let block1: Vec<u32> = (0..15).map(|_| rng.next_u32()).collect();
        let w17 = rng.next_u32();
        assert!(!block1.contains(&w17) || block1[0] != w17);
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(a, b);
    }
}
