//! Sequence helpers: shuffling and random selection.

use crate::{Rng, RngCore};

/// Uniform index below `ubound`, consuming the raw stream exactly as
/// upstream rand 0.8 does (a u32 draw when the bound fits in u32).
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        a.shuffle(&mut r1);
        b.shuffle(&mut r2);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_in_bounds() {
        let v = [10u8, 20, 30];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
