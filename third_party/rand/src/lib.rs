//! Vendored, dependency-free re-implementation of the `rand` 0.8 API
//! surface this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the random-number traits it needs as a local path
//! crate. The API is trait-compatible with `rand` 0.8 for the subset the
//! ppgr crates consume: [`RngCore`], [`Rng`], [`CryptoRng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! [`rngs::StdRng`] is a ChaCha12 generator (the same core algorithm the
//! real `rand` 0.8 `StdRng` uses). Streams are deterministic per seed but
//! are not bit-identical to upstream `rand`; nothing in this workspace
//! depends on the upstream stream values, only on seed-determinism.

pub mod rngs;
pub mod seq;

use std::fmt;

/// Error type for fallible RNG operations (e.g. [`RngCore::try_fill_bytes`]).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw 32/64-bit output and byte
/// filling.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for generators suitable for cryptographic use.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}
impl<R: CryptoRng + ?Sized> CryptoRng for Box<R> {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// a PCG32 stream (the same expansion rand_core 0.6 uses).
    fn seed_from_u64(state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64);

impl SampleStandard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Low word first (matches upstream rand's stream layout).
        let x = rng.next_u64() as u128;
        let y = rng.next_u64() as u128;
        (y << 64) | x
    }
}

impl SampleStandard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types [`Rng::gen_range`] can sample without bias.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `high > low`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

// The sampling below reproduces upstream rand 0.8's `UniformInt`
// `sample_single_inclusive` bit-for-bit (same raw-stream consumption, same
// accept/reject decisions): draw one value of the type's "large" width,
// widening-multiply by the span, accept when the low half falls inside the
// unbiased zone. Seed-dependent tests in this workspace rely on the exact
// value sequence, so the algorithm must not be "improved".
macro_rules! impl_uniform_int {
    ($($t:ty, $unsigned:ty, $large:ty, $wide:ty);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                Self::sample_inclusive(rng, low, high - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let range = (high as $unsigned).wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as $large;
                if range == 0 {
                    // Full domain of the type.
                    return <$t as SampleStandard>::sample(rng);
                }
                let zone = if <$unsigned>::MAX as $large <= u16::MAX as $large {
                    let ints_to_reject = (<$unsigned>::MAX as $large + 1) % range;
                    <$unsigned>::MAX as $large - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$large as SampleStandard>::sample(rng);
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$large>::BITS) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(
    u8, u8, u32, u64; u16, u16, u32, u64; u32, u32, u32, u64;
    u64, u64, u64, u128; usize, usize, u64, u128;
    i8, u8, u32, u64; i16, u16, u32, u64; i32, u32, u32, u64;
    i64, u64, u64, u128; isize, usize, u64, u128;
);

/// 128×128→256-bit widening multiply, returning `(hi, lo)`.
fn wmul_u128(a: u128, b: u128) -> (u128, u128) {
    const LOWER_MASK: u128 = !0u64 as u128;
    let mut low = (a & LOWER_MASK) * (b & LOWER_MASK);
    let mut t = low >> 64;
    low &= LOWER_MASK;
    t += (a >> 64) * (b & LOWER_MASK);
    low += (t & LOWER_MASK) << 64;
    let mut high = t >> 64;
    t = low >> 64;
    low &= LOWER_MASK;
    t += (b >> 64) * (a & LOWER_MASK);
    low += (t & LOWER_MASK) << 64;
    high += t >> 64;
    high += (a >> 64) * (b >> 64);
    (high, low)
}

macro_rules! impl_uniform_int_128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                Self::sample_inclusive(rng, low, high - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let range = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if range == 0 {
                    return <$t as SampleStandard>::sample(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = u128::sample(rng);
                    let (hi, lo) = wmul_u128(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int_128!(u128, i128);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over the whole domain of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // Bernoulli via a 64-bit fixed-point threshold (upstream-exact).
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3u64..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
        for _ in 0..100 {
            let v: usize = rng.gen_range(0..=4usize);
            assert!(v <= 4);
        }
        let v: i64 = rng.gen_range(-5i64..5);
        assert!((-5..5).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_deterministic_and_nontrivial() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut buf1 = [0u8; 37];
        let mut buf2 = [0u8; 37];
        a.fill_bytes(&mut buf1);
        b.try_fill_bytes(&mut buf2).unwrap();
        assert_eq!(buf1, buf2);
        assert!(buf1.iter().any(|&x| x != 0));
    }
}
