//! Vendored, dependency-free re-implementation of the `criterion` API
//! surface the ppgr benches use. Measures mean wall-clock time per
//! iteration over a fixed number of samples and prints one line per
//! benchmark; no statistical analysis, plotting, or baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: `BenchmarkId::new("enc", n)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A parameterised id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter, rendered as the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the mean wall-clock cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<50} {:>12}/iter ({samples} samples)", fmt_duration(mean)),
        None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Upstream-compat no-op: this shim always times wall-clock directly.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Upstream-compat no-op.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, |b| f(b));
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup { name, samples: 10, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, |b| f(b));
        self
    }
}

/// Bundles benchmark functions into a runnable group, as in upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_run() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("enc", 32).to_string(), "enc/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
