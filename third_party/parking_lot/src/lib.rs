//! Vendored shim exposing the `parking_lot` API surface this workspace
//! uses, backed by `std::sync`. The semantic difference from upstream that
//! matters here — `lock()` returning a guard directly instead of a
//! poisoning `Result` — is preserved by recovering from poisoned locks
//! (matching parking_lot, which has no lock poisoning).

use std::sync::PoisonError;

pub use std::sync::MutexGuard;
pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers–writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_cross_thread() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(l.into_inner(), 7);
    }
}
