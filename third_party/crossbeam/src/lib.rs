//! Vendored shim exposing the `crossbeam::channel` API surface this
//! workspace uses, backed by `std::sync::mpsc`.
//!
//! Only the SPSC/MPSC subset the mesh layer needs is provided: `unbounded`
//! channels with blocking `recv`, plus disconnect detection on both ends.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error: the receiving side disconnected before the send.
    #[derive(Clone, Copy, Debug, Eq, PartialEq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error: every sender disconnected and the queue is drained.
    #[derive(Clone, Copy, Debug, Eq, PartialEq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error for [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, Eq, PartialEq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// Queue empty and all senders gone.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, Eq, PartialEq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Queue empty and all senders gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// [`SendError`] if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once every sender is dropped and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Waits at most `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] once every sender is dropped
        /// and the queue drained. Queued messages are always delivered
        /// before a disconnect is reported.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// An iterator draining messages until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
