//! Vendored, dependency-free re-implementation of the `bytes` 1.x API
//! surface this workspace uses: [`Bytes`], [`BytesMut`], [`Buf`], and
//! [`BufMut`]. Network byte order (big-endian) for all integer accessors,
//! exactly like upstream.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared hex-dump Debug body for both buffer types.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref().iter().take(32) {
                write!(f, "\\x{b:02x}")?;
            }
            if self.as_ref().len() > 32 {
                write!(f, "…")?;
            }
            write!(f, "\"")
        }
    };
}

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Copies `dest.len()` bytes out, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dest.len()` bytes remain.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "buffer underflow");
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    /// Copies the next `len` bytes into an owned [`Bytes`], consuming them.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

/// A cheaply cloneable, immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

/// A growable, owned byte buffer; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.vec.resize(self.vec.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints_and_slices() {
        let mut w = BytesMut::new();
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bytes(0, 3);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.len(), 4 + 8 + 3 + 3);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut pad = [9u8; 3];
        r.copy_to_slice(&mut pad);
        assert_eq!(pad, [0, 0, 0]);
        let tail = r.copy_to_bytes(3);
        assert_eq!(&tail[..], b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(&mid.slice(..2)[..], &[2, 3]);
        assert_eq!(b.slice(..).len(), 5);
        assert_eq!(b.slice(2..=3).as_slice(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.get_u32();
    }
}
