//! Vendored, dependency-free re-implementation of the `proptest` API
//! surface this workspace uses: the [`proptest!`] macro, integer-range and
//! `any::<T>()` strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test's file and name), so failures reproduce across runs. Unlike
//! upstream proptest there is no shrinking: a failing case reports the
//! case number and message and panics immediately.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Run configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (via [`prop_assume!`]) cases tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, max_global_rejects: 1024 }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; try another input.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test's source location and name.
    pub fn for_test(file: &str, name: &str) -> Self {
        // FNV-1a over the identifying strings: stable across runs/platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain([0u8]).chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u128) -> u128 {
        assert!(span > 0, "empty strategy range");
        if span.is_power_of_two() {
            return self.next_u128() & (span - 1);
        }
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = self.next_u128();
            if v <= zone {
                return v % span;
            }
        }
    }

    fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Integer types with range/`any` strategies.
pub trait ArbitraryInt: Copy + std::fmt::Debug {
    /// Uniform over `[lo, hi)`.
    fn below(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform over `[lo, hi]`.
    fn inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// The maximum value of the type.
    fn max_value() -> Self;
    /// Uniform over the full domain.
    fn any_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl ArbitraryInt for $t {
            fn below(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                lo.wrapping_add(rng.below(span) as $t)
            }
            fn inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
            fn any_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8 as u8, u16 as u16, u32 as u32, u64 as u64, usize as usize,
    i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl ArbitraryInt for u128 {
    fn below(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty strategy range");
        lo + rng.below(hi - lo)
    }
    fn inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty strategy range");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            return Self::any_value(rng);
        }
        lo + rng.below(span)
    }
    fn max_value() -> Self {
        u128::MAX
    }
    fn any_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl ArbitraryInt for i128 {
    fn below(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty strategy range");
        let span = (hi as u128).wrapping_sub(lo as u128);
        lo.wrapping_add(rng.below(span) as i128)
    }
    fn inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty strategy range");
        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
        if span == 0 {
            return Self::any_value(rng);
        }
        lo.wrapping_add(rng.below(span) as i128)
    }
    fn max_value() -> Self {
        i128::MAX
    }
    fn any_value(rng: &mut TestRng) -> Self {
        u128::any_value(rng) as i128
    }
}

impl<T: ArbitraryInt> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::below(rng, self.start, self.end)
    }
}

impl<T: ArbitraryInt> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::inclusive(rng, *self.start(), *self.end())
    }
}

impl<T: ArbitraryInt> Strategy for RangeFrom<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::inclusive(rng, self.start, T::max_value())
    }
}

/// Types usable with [`any`].
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Uniform over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as ArbitraryInt>::any_value(rng)
            }
        }
    )*};
}

impl_arbitrary_via_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain: `any::<u32>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespaced combinators (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Length specifications accepted by [`vec`].
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u128) as usize
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start() <= self.end(), "empty size range");
                self.start() + rng.below((self.end() - self.start()) as u128 + 1) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Declares property tests.
///
/// Supports the upstream grammar subset used in this workspace: an
/// optional `#![proptest_config(...)]` header and `fn name(arg in strategy,
/// ...) { body }` items carrying arbitrary attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(file!(), stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                case += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many rejected cases ({}), last: {}",
                                stringify!($name), rejected, why
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case #{case}: {msg}\n  inputs: {}",
                            stringify!($name), case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("f.rs", "t");
        let mut b = TestRng::for_test("f.rs", "t");
        let mut c = TestRng::for_test("f.rs", "u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::for_test("f.rs", "bounds");
        for _ in 0..200 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (0u64..=5).generate(&mut rng);
            assert!(w <= 5);
            let x = (1u64..).generate(&mut rng);
            assert!(x >= 1);
            let ys = prop::collection::vec(0u32..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&ys.len()));
            assert!(ys.iter().all(|&y| y < 4));
            let m = (0u64..7).prop_map(|v| v * 2).generate(&mut rng);
            assert!(m < 14 && m % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn macro_end_to_end(a in 0u64..100, b in 1u64.., v in prop::collection::vec(any::<u32>(), 0..4)) {
            prop_assume!(b > 0);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b - b, a);
            prop_assert!(v.len() < 4, "vec len {} out of bounds", v.len());
        }
    }
}
